// Router variant with virtual output queues and iSLIP matching — the
// framework extension that lifts the 58.6% HOL throughput cap (see
// router/voq.hpp). Fabric-facing behavior is identical to Router: at most
// one packet in flight per egress, one word injected per ingress per
// cycle, back-pressure respected.
#pragma once

#include <memory>
#include <optional>

#include "fabric/fabric.hpp"
#include "router/egress.hpp"
#include "router/voq.hpp"
#include "traffic/generator.hpp"
#include "traffic/source.hpp"

namespace sfab {

struct VoqRouterConfig {
  /// Shared packet capacity per ingress VOQ bank.
  std::size_t ingress_queue_packets = 64;
  /// iSLIP request/grant/accept rounds per cycle (0 = until maximal).
  unsigned islip_iterations = 0;
};

class VoqRouter {
 public:
  VoqRouter(std::unique_ptr<SwitchFabric> fabric,
            std::unique_ptr<TrafficSource> traffic,
            VoqRouterConfig config = {});

  /// Convenience: wraps a concrete generator (the common case).
  VoqRouter(std::unique_ptr<SwitchFabric> fabric, TrafficGenerator traffic,
            VoqRouterConfig config = {});

  void step();
  void run(Cycle cycles);
  void set_traffic_enabled(bool enabled) noexcept {
    traffic_enabled_ = enabled;
  }
  /// Runs with traffic off until empty; false if max_cycles elapsed first.
  bool drain(Cycle max_cycles);

  [[nodiscard]] Cycle now() const noexcept { return cycle_; }
  [[nodiscard]] unsigned ports() const noexcept { return fabric_->ports(); }
  [[nodiscard]] SwitchFabric& fabric() noexcept { return *fabric_; }
  [[nodiscard]] const SwitchFabric& fabric() const noexcept {
    return *fabric_;
  }
  [[nodiscard]] EgressCollector& egress() noexcept { return egress_; }
  [[nodiscard]] const EgressCollector& egress() const noexcept {
    return egress_;
  }
  [[nodiscard]] std::uint64_t total_drops() const;
  [[nodiscard]] std::size_t total_queued() const;
  [[nodiscard]] bool quiescent() const;

 private:
  struct StreamingPacket {
    Packet packet;
    std::size_t word = 0;
  };

  std::unique_ptr<SwitchFabric> fabric_;
  std::unique_ptr<TrafficSource> traffic_;
  IslipArbiter islip_;
  EgressCollector egress_;
  std::vector<VoqBank> banks_;
  std::vector<std::optional<StreamingPacket>> streaming_;
  std::vector<char> egress_busy_;
  Cycle cycle_ = 0;
  bool traffic_enabled_ = true;
};

}  // namespace sfab
