#include "router/voq.hpp"

#include <stdexcept>

namespace sfab {

VoqBank::VoqBank(PortId port, unsigned egress_ports,
                 std::size_t capacity_packets)
    : port_(port), capacity_(capacity_packets), queues_(egress_ports) {
  if (egress_ports < 2) throw std::invalid_argument("VoqBank: ports >= 2");
  if (capacity_packets < 1) {
    throw std::invalid_argument("VoqBank: capacity >= 1 packet");
  }
}

bool VoqBank::enqueue(Packet packet) {
  if (packet.dest >= queues_.size()) {
    throw std::out_of_range("VoqBank: destination out of range");
  }
  if (total_ >= capacity_) {
    ++drops_;
    return false;
  }
  queues_[packet.dest].push_back(std::move(packet));
  ++total_;
  return true;
}

bool VoqBank::has_packet_for(PortId egress) const {
  if (egress >= queues_.size()) throw std::out_of_range("VoqBank: egress");
  return !queues_[egress].empty();
}

Packet VoqBank::pop(PortId egress) {
  if (!has_packet_for(egress)) {
    throw std::logic_error("VoqBank: pop from empty VOQ");
  }
  Packet p = std::move(queues_[egress].front());
  queues_[egress].pop_front();
  --total_;
  return p;
}

IslipArbiter::IslipArbiter(unsigned ports, unsigned iterations)
    : ports_(ports),
      iterations_(iterations == 0 ? ports : iterations),
      grant_pointer_(ports, 0),
      accept_pointer_(ports, 0) {
  if (ports < 2) throw std::invalid_argument("IslipArbiter: ports >= 2");
}

std::vector<Match> IslipArbiter::match(
    const std::vector<std::vector<char>>& requests) {
  if (requests.size() != ports_) {
    throw std::invalid_argument("IslipArbiter: request matrix shape");
  }
  for (const auto& row : requests) {
    if (row.size() != ports_) {
      throw std::invalid_argument("IslipArbiter: request matrix shape");
    }
  }

  std::vector<char> ingress_matched(ports_, 0);
  std::vector<char> egress_matched(ports_, 0);
  std::vector<Match> matches;

  for (unsigned iter = 0; iter < iterations_; ++iter) {
    // Grant phase: each unmatched egress grants the first requesting,
    // unmatched ingress at or after its grant pointer.
    std::vector<std::optional<PortId>> grant(ports_);
    for (PortId egress = 0; egress < ports_; ++egress) {
      if (egress_matched[egress]) continue;
      for (unsigned k = 0; k < ports_; ++k) {
        const PortId ingress = (grant_pointer_[egress] + k) % ports_;
        if (!ingress_matched[ingress] && requests[ingress][egress]) {
          grant[egress] = ingress;
          break;
        }
      }
    }

    // Accept phase: each ingress accepts the first granting egress at or
    // after its accept pointer.
    bool any_accept = false;
    for (PortId ingress = 0; ingress < ports_; ++ingress) {
      if (ingress_matched[ingress]) continue;
      std::optional<PortId> accepted;
      for (unsigned k = 0; k < ports_; ++k) {
        const PortId egress = (accept_pointer_[ingress] + k) % ports_;
        if (grant[egress].has_value() && *grant[egress] == ingress) {
          accepted = egress;
          break;
        }
      }
      if (!accepted) continue;

      matches.push_back(Match{ingress, *accepted});
      ingress_matched[ingress] = 1;
      egress_matched[*accepted] = 1;
      any_accept = true;
      // Pointers advance one past the accepted partner, and only on the
      // first iteration (the iSLIP rule that prevents starvation).
      if (iter == 0) {
        grant_pointer_[*accepted] = (ingress + 1) % ports_;
        accept_pointer_[ingress] = (*accepted + 1) % ports_;
      }
    }
    if (!any_accept) break;  // matching is maximal; further rounds are idle
  }
  return matches;
}

}  // namespace sfab
