#include "router/voq.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/bitops.hpp"

namespace sfab {

VoqBank::VoqBank(PortId port, unsigned egress_ports,
                 std::size_t capacity_packets, PacketArena& arena)
    : port_(port), arena_(&arena), capacity_(capacity_packets) {
  if (egress_ports < 2) throw std::invalid_argument("VoqBank: ports >= 2");
  if (capacity_packets < 1) {
    throw std::invalid_argument("VoqBank: capacity >= 1 packet");
  }
  // Each per-egress ring must be able to absorb the full shared budget:
  // nothing stops every queued packet from targeting one egress.
  queues_.reserve(egress_ports);
  for (unsigned e = 0; e < egress_ports; ++e) {
    queues_.emplace_back(capacity_packets);
  }
  occupancy_.assign(bitmask_words(egress_ports), 0);
}

bool VoqBank::enqueue(const Packet& packet) {
  if (packet.dest >= queues_.size()) {
    throw std::out_of_range("VoqBank: destination out of range");
  }
  if (total_ >= capacity_) {
    ++drops_;
    arena_->release(packet);
    return false;
  }
  queues_[packet.dest].push(packet);
  set_bit(occupancy_.data(), packet.dest);
  ++total_;
  return true;
}

bool VoqBank::has_packet_for(PortId egress) const {
  if (egress >= queues_.size()) throw std::out_of_range("VoqBank: egress");
  return !queues_[egress].empty();
}

Packet VoqBank::pop(PortId egress) {
  if (!has_packet_for(egress)) {
    throw std::logic_error("VoqBank: pop from empty VOQ");
  }
  const Packet p = queues_[egress].front();
  queues_[egress].pop();
  if (queues_[egress].empty()) clear_bit(occupancy_.data(), egress);
  --total_;
  return p;
}

IslipArbiter::IslipArbiter(unsigned ports, unsigned iterations)
    : ports_(ports),
      iterations_(iterations == 0 ? ports : iterations),
      grant_pointer_(ports, 0),
      accept_pointer_(ports, 0),
      grant_(ports, kInvalidPort),
      ingress_matched_(ports, 0),
      egress_matched_(ports, 0) {
  if (ports < 2) throw std::invalid_argument("IslipArbiter: ports >= 2");
  flat_scratch_.reserve(static_cast<std::size_t>(ports) * ports);
  matches_.reserve(ports);
}

const std::vector<Match>& IslipArbiter::match_banks(
    const std::vector<VoqBank>& banks,
    const std::vector<std::uint64_t>& ingress_free,
    const std::vector<std::uint64_t>& egress_free) {
  if (banks.size() != ports_) {
    throw std::invalid_argument("IslipArbiter: bank count");
  }
  const std::size_t words = bitmask_words(ports_);
  if (ingress_free.size() != words || egress_free.size() != words) {
    throw std::invalid_argument("IslipArbiter: availability mask shape");
  }
  for (const VoqBank& bank : banks) {
    if (bank.occupancy_words().size() < words) {
      throw std::invalid_argument("IslipArbiter: bank egress count");
    }
  }

  std::fill(ingress_matched_.begin(), ingress_matched_.end(), 0);
  std::fill(egress_matched_.begin(), egress_matched_.end(), 0);
  matches_.clear();

  // Identical pointer walk to match_flat; the request test reads the
  // banks' occupancy bits gated by the availability masks instead of a
  // materialized matrix, so the two paths match match-for-match.
  for (unsigned iter = 0; iter < iterations_; ++iter) {
    std::fill(grant_.begin(), grant_.end(), kInvalidPort);
    for (PortId egress = 0; egress < ports_; ++egress) {
      if (egress_matched_[egress] || !test_bit(egress_free.data(), egress)) {
        continue;
      }
      const unsigned ingress =
          cyclic_first(ports_, grant_pointer_[egress], [&](unsigned i) {
            return !ingress_matched_[i] &&
                   test_bit(ingress_free.data(), i) &&
                   test_bit(banks[i].occupancy_words().data(), egress);
          });
      if (ingress < ports_) grant_[egress] = ingress;
    }

    bool any_accept = false;
    for (PortId ingress = 0; ingress < ports_; ++ingress) {
      if (ingress_matched_[ingress]) continue;
      const unsigned found =
          cyclic_first(ports_, accept_pointer_[ingress],
                       [&](unsigned e) { return grant_[e] == ingress; });
      if (found == ports_) continue;
      const PortId accepted = found;

      matches_.push_back(Match{ingress, accepted});
      ingress_matched_[ingress] = 1;
      egress_matched_[accepted] = 1;
      any_accept = true;
      if (iter == 0) {
        grant_pointer_[accepted] = (ingress + 1) % ports_;
        accept_pointer_[ingress] = (accepted + 1) % ports_;
      }
    }
    if (!any_accept) break;  // matching is maximal; further rounds are idle
  }
  return matches_;
}

const std::vector<Match>& IslipArbiter::match_flat(
    const std::vector<char>& requests) {
  if (requests.size() != static_cast<std::size_t>(ports_) * ports_) {
    throw std::invalid_argument("IslipArbiter: request matrix shape");
  }

  std::fill(ingress_matched_.begin(), ingress_matched_.end(), 0);
  std::fill(egress_matched_.begin(), egress_matched_.end(), 0);
  matches_.clear();

  for (unsigned iter = 0; iter < iterations_; ++iter) {
    // Grant phase: each unmatched egress grants the first requesting,
    // unmatched ingress at or after its grant pointer.
    std::fill(grant_.begin(), grant_.end(), kInvalidPort);
    for (PortId egress = 0; egress < ports_; ++egress) {
      if (egress_matched_[egress]) continue;
      const unsigned ingress =
          cyclic_first(ports_, grant_pointer_[egress], [&](unsigned i) {
            return !ingress_matched_[i] &&
                   requests[static_cast<std::size_t>(i) * ports_ + egress];
          });
      if (ingress < ports_) grant_[egress] = ingress;
    }

    // Accept phase: each ingress accepts the first granting egress at or
    // after its accept pointer.
    bool any_accept = false;
    for (PortId ingress = 0; ingress < ports_; ++ingress) {
      if (ingress_matched_[ingress]) continue;
      const unsigned found =
          cyclic_first(ports_, accept_pointer_[ingress],
                       [&](unsigned e) { return grant_[e] == ingress; });
      if (found == ports_) continue;
      const PortId accepted = found;

      matches_.push_back(Match{ingress, accepted});
      ingress_matched_[ingress] = 1;
      egress_matched_[accepted] = 1;
      any_accept = true;
      // Pointers advance one past the accepted partner, and only on the
      // first iteration (the iSLIP rule that prevents starvation).
      if (iter == 0) {
        grant_pointer_[accepted] = (ingress + 1) % ports_;
        accept_pointer_[ingress] = (accepted + 1) % ports_;
      }
    }
    if (!any_accept) break;  // matching is maximal; further rounds are idle
  }
  return matches_;
}

std::vector<Match> IslipArbiter::match(
    const std::vector<std::vector<char>>& requests) {
  if (requests.size() != ports_) {
    throw std::invalid_argument("IslipArbiter: request matrix shape");
  }
  for (const auto& row : requests) {
    if (row.size() != ports_) {
      throw std::invalid_argument("IslipArbiter: request matrix shape");
    }
  }
  flat_scratch_.assign(static_cast<std::size_t>(ports_) * ports_, 0);
  for (PortId i = 0; i < ports_; ++i) {
    for (PortId j = 0; j < ports_; ++j) {
      flat_scratch_[static_cast<std::size_t>(i) * ports_ + j] =
          requests[i][j];
    }
  }
  return match_flat(flat_scratch_);
}

}  // namespace sfab
