// Ingress process unit (paper section 2 / 5.2).
//
// Each ingress port owns an input queue of whole packets (the paper's input
// buffering scheme for destination contention: these queues sit *outside*
// the switch fabric and are not charged to fabric power). The head-of-line
// packet waits for an arbiter grant, then streams into the fabric one word
// per cycle.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "common/types.hpp"
#include "traffic/packet.hpp"

namespace sfab {

class IngressUnit {
 public:
  /// `queue_packets` is the input-queue capacity in whole packets.
  IngressUnit(PortId port, std::size_t queue_packets);

  /// Queues an arriving packet; returns false (and counts a drop) if full.
  bool enqueue(Packet packet, Cycle now);

  /// Head-of-line packet awaiting a grant (nullptr if none or streaming).
  [[nodiscard]] const Packet* head_of_line() const;

  /// Cycle the current head-of-line packet reached the queue head (for the
  /// arbiter's FCFS ordering).
  [[nodiscard]] Cycle head_since() const { return head_since_; }

  /// True while a granted packet still has words to send.
  [[nodiscard]] bool streaming() const noexcept { return streaming_; }

  /// Arbiter grant: begins streaming the head-of-line packet.
  void grant(Cycle now);

  /// Next word to inject (valid only while streaming()).
  [[nodiscard]] Word peek_word() const;
  [[nodiscard]] bool peek_is_tail() const;
  [[nodiscard]] std::uint64_t streaming_packet_id() const;
  [[nodiscard]] PortId streaming_dest() const;
  /// Index of the word peek_word() returns (0 = header).
  [[nodiscard]] std::uint32_t streaming_word_index() const;

  /// Marks the current word as injected; advances to the next word and
  /// retires the packet when the tail goes out.
  void advance(Cycle now);

  // --- stats -----------------------------------------------------------------
  [[nodiscard]] PortId port() const noexcept { return port_; }
  [[nodiscard]] std::size_t queued_packets() const noexcept {
    return queue_.size();
  }
  [[nodiscard]] std::uint64_t drops() const noexcept { return drops_; }
  [[nodiscard]] std::uint64_t packets_sent() const noexcept {
    return packets_sent_;
  }
  [[nodiscard]] bool empty() const noexcept {
    return queue_.empty() && !streaming_;
  }

 private:
  PortId port_;
  std::size_t capacity_;
  std::deque<Packet> queue_;
  Cycle head_since_ = 0;
  bool streaming_ = false;
  std::size_t word_index_ = 0;
  std::uint64_t drops_ = 0;
  std::uint64_t packets_sent_ = 0;
};

}  // namespace sfab
