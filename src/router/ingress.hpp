// Ingress process unit (paper section 2 / 5.2).
//
// Each ingress port owns an input queue of whole packets (the paper's input
// buffering scheme for destination contention: these queues sit *outside*
// the switch fabric and are not charged to fabric power). The head-of-line
// packet waits for an arbiter grant, then streams into the fabric one word
// per cycle, read straight out of the packet arena's slab. Everything here
// is inline and allocation-free: the queue is a fixed ring of POD handles.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "common/types.hpp"
#include "fabric/fabric.hpp"  // Flit
#include "router/packet_ring.hpp"
#include "traffic/packet.hpp"

namespace sfab {

class IngressUnit {
 public:
  /// `queue_packets` is the input-queue capacity in whole packets. The
  /// arena must outlive this unit; queued packets' handles are released
  /// back to it on drop and on tail injection.
  IngressUnit(PortId port, std::size_t queue_packets, PacketArena& arena)
      : port_(port), arena_(&arena), queue_(queue_packets) {}

  /// Queues an arriving packet; on a full queue the packet is dropped:
  /// counted, released back to the arena, and false returned.
  bool enqueue(const Packet& packet, Cycle now) {
    if (queue_.full()) {
      ++drops_;
      arena_->release(packet);
      return false;
    }
    const bool was_empty = queue_.empty();
    queue_.push(packet);
    if (was_empty && !streaming_) head_since_ = now;
    return true;
  }

  /// Head-of-line packet awaiting a grant (nullptr if none or streaming).
  [[nodiscard]] const Packet* head_of_line() const {
    if (streaming_ || queue_.empty()) return nullptr;
    return &queue_.front();
  }

  /// Cycle the current head-of-line packet reached the queue head (for the
  /// arbiter's FCFS ordering).
  [[nodiscard]] Cycle head_since() const { return head_since_; }

  /// True while a granted packet still has words to send.
  [[nodiscard]] bool streaming() const noexcept { return streaming_; }

  /// Arbiter grant: begins streaming the head-of-line packet.
  void grant(Cycle /*now*/) {
    if (streaming_) {
      throw std::logic_error("IngressUnit: grant while streaming");
    }
    if (queue_.empty()) {
      throw std::logic_error("IngressUnit: grant on empty queue");
    }
    streaming_ = true;
    word_index_ = 0;
  }

  /// Next word to inject (valid only while streaming()).
  [[nodiscard]] Word peek_word() const {
    check_streaming();
    return arena_->word(queue_.front(), word_index_);
  }

  /// The full flit for the current word in one call — one queue-front load
  /// instead of five accessor round-trips.
  [[nodiscard]] Flit peek_flit() const {
    check_streaming();
    const Packet& p = queue_.front();
    Flit flit;
    flit.data = arena_->word(p, word_index_);
    flit.dest = p.dest;
    flit.tail = word_index_ + 1 == p.word_count;
    flit.packet_id = p.id;
    flit.seq = word_index_;
    return flit;
  }

  /// peek_flit() + advance() fused: builds the current word's flit and
  /// consumes it — the router's per-word fast path (single streaming check
  /// and queue-front load; the caller injects the returned flit).
  [[nodiscard]] Flit emit_word(Cycle now) {
    check_streaming();
    const Packet& p = queue_.front();
    Flit flit;
    flit.data = arena_->word(p, word_index_);
    flit.dest = p.dest;
    flit.packet_id = p.id;
    flit.seq = word_index_;
    ++word_index_;
    if (word_index_ == p.word_count) {
      flit.tail = true;
      arena_->release(p);
      queue_.pop();
      streaming_ = false;
      word_index_ = 0;
      ++packets_sent_;
      head_since_ = now;  // the next packet (if any) becomes head now
    }
    return flit;
  }
  [[nodiscard]] bool peek_is_tail() const {
    check_streaming();
    return word_index_ + 1 == queue_.front().word_count;
  }
  [[nodiscard]] std::uint64_t streaming_packet_id() const {
    check_streaming();
    return queue_.front().id;
  }
  [[nodiscard]] PortId streaming_dest() const {
    check_streaming();
    return queue_.front().dest;
  }
  /// Index of the word peek_word() returns (0 = header).
  [[nodiscard]] std::uint32_t streaming_word_index() const {
    check_streaming();
    return word_index_;
  }

  /// Marks the current word as injected; advances to the next word and
  /// retires the packet (releasing its arena block) when the tail goes out.
  void advance(Cycle now) {
    check_streaming();
    ++word_index_;
    if (word_index_ == queue_.front().word_count) {
      arena_->release(queue_.front());
      queue_.pop();
      streaming_ = false;
      word_index_ = 0;
      ++packets_sent_;
      head_since_ = now;  // the next packet (if any) becomes head now
    }
  }

  // --- stats -----------------------------------------------------------------
  [[nodiscard]] PortId port() const noexcept { return port_; }
  [[nodiscard]] std::size_t queued_packets() const noexcept {
    return queue_.size();
  }
  [[nodiscard]] std::uint64_t drops() const noexcept { return drops_; }
  [[nodiscard]] std::uint64_t packets_sent() const noexcept {
    return packets_sent_;
  }
  [[nodiscard]] bool empty() const noexcept {
    return queue_.empty() && !streaming_;
  }

 private:
  void check_streaming() const {
    if (!streaming_) throw std::logic_error("IngressUnit: not streaming");
  }

  PortId port_;
  PacketArena* arena_;
  PacketRing queue_;
  Cycle head_since_ = 0;
  bool streaming_ = false;
  std::uint32_t word_index_ = 0;
  std::uint64_t drops_ = 0;
  std::uint64_t packets_sent_ = 0;
};

}  // namespace sfab
