#include "router/arbiter.hpp"

#include <stdexcept>

namespace sfab {

Arbiter::Arbiter(unsigned ports) : locked_(ports, 0), rr_next_(ports, 0) {
  if (ports < 2) throw std::invalid_argument("Arbiter: ports >= 2");
}

void Arbiter::lock(PortId egress) {
  if (egress >= ports()) throw std::out_of_range("Arbiter: bad egress");
  if (locked_[egress]) throw std::logic_error("Arbiter: egress already locked");
  locked_[egress] = 1;
}

void Arbiter::unlock(PortId egress) {
  if (egress >= ports()) throw std::out_of_range("Arbiter: bad egress");
  if (!locked_[egress]) throw std::logic_error("Arbiter: egress not locked");
  locked_[egress] = 0;
}

bool Arbiter::locked(PortId egress) const {
  if (egress >= ports()) throw std::out_of_range("Arbiter: bad egress");
  return locked_[egress] != 0;
}

std::vector<ArbiterRequest> Arbiter::arbitrate(
    const std::vector<ArbiterRequest>& requests) {
  // Best request per egress under (FCFS, round-robin distance) ordering.
  std::vector<std::optional<ArbiterRequest>> best(ports());

  const auto rr_distance = [this](PortId egress, PortId ingress) {
    // Positions ahead of the round-robin pointer win ties.
    return (ingress + ports() - rr_next_[egress]) % ports();
  };

  for (const ArbiterRequest& req : requests) {
    if (req.ingress >= ports() || req.egress >= ports()) {
      throw std::out_of_range("Arbiter: bad request port");
    }
    if (locked_[req.egress]) continue;
    auto& incumbent = best[req.egress];
    if (!incumbent.has_value() ||
        req.waiting_since < incumbent->waiting_since ||
        (req.waiting_since == incumbent->waiting_since &&
         rr_distance(req.egress, req.ingress) <
             rr_distance(req.egress, incumbent->ingress))) {
      incumbent = req;
    }
  }

  std::vector<ArbiterRequest> grants;
  for (PortId egress = 0; egress < ports(); ++egress) {
    if (!best[egress].has_value()) continue;
    grants.push_back(*best[egress]);
    rr_next_[egress] = (best[egress]->ingress + 1) % ports();
  }
  return grants;
}

}  // namespace sfab
