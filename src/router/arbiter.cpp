#include "router/arbiter.hpp"

#include <algorithm>
#include <stdexcept>

namespace sfab {

Arbiter::Arbiter(unsigned ports)
    : locked_(ports, 0),
      rr_next_(ports, 0),
      best_(ports),
      best_valid_(ports, 0) {
  if (ports < 2) throw std::invalid_argument("Arbiter: ports >= 2");
  grants_.reserve(ports);
}

void Arbiter::lock(PortId egress) {
  if (egress >= ports()) throw std::out_of_range("Arbiter: bad egress");
  if (locked_[egress]) throw std::logic_error("Arbiter: egress already locked");
  locked_[egress] = 1;
  if (egress < 64) locked_mask_ |= std::uint64_t{1} << egress;
}

void Arbiter::unlock(PortId egress) {
  if (egress >= ports()) throw std::out_of_range("Arbiter: bad egress");
  if (!locked_[egress]) throw std::logic_error("Arbiter: egress not locked");
  locked_[egress] = 0;
  if (egress < 64) locked_mask_ &= ~(std::uint64_t{1} << egress);
}

const std::vector<ArbiterRequest>& Arbiter::arbitrate(
    const std::vector<ArbiterRequest>& requests) {
  // Best request per egress under (FCFS, round-robin distance) ordering.
  std::fill(best_valid_.begin(), best_valid_.end(), 0);

  const auto rr_distance = [this](PortId egress, PortId ingress) {
    // Positions ahead of the round-robin pointer win ties. ingress and the
    // pointer are both < ports, so one conditional subtract replaces the
    // modulo (this runs per tied request per cycle).
    const PortId d = ingress + ports() - rr_next_[egress];
    return d >= ports() ? d - ports() : d;
  };

  for (const ArbiterRequest& req : requests) {
    if (req.ingress >= ports() || req.egress >= ports()) {
      throw std::out_of_range("Arbiter: bad request port");
    }
    if (locked_[req.egress]) continue;
    ArbiterRequest& incumbent = best_[req.egress];
    if (!best_valid_[req.egress] ||
        req.waiting_since < incumbent.waiting_since ||
        (req.waiting_since == incumbent.waiting_since &&
         rr_distance(req.egress, req.ingress) <
             rr_distance(req.egress, incumbent.ingress))) {
      incumbent = req;
      best_valid_[req.egress] = 1;
    }
  }

  grants_.clear();
  for (PortId egress = 0; egress < ports(); ++egress) {
    if (!best_valid_[egress]) continue;
    grants_.push_back(best_[egress]);
    const PortId next = best_[egress].ingress + 1;
    rr_next_[egress] = next == ports() ? 0 : next;
  }
  return grants_;
}

}  // namespace sfab
