#include "gatelevel/power_sim.hpp"

#include <algorithm>
#include <atomic>
#include <limits>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "gatelevel/bitsliced.hpp"

namespace sfab::gatelevel {

std::vector<std::uint32_t> all_masks(unsigned ports) {
  if (ports >= 20) {
    throw std::invalid_argument("all_masks: too many ports for full sweep");
  }
  std::vector<std::uint32_t> masks(1u << ports);
  for (std::uint32_t m = 0; m < masks.size(); ++m) masks[m] = m;
  return masks;
}

namespace {

/// The Monte-Carlo sample a config defines: `lanes` streams, each measured
/// `steps` cycles. A pure function of the config — every engine, block
/// width, and kernel processes exactly this sample.
struct SampleGrid {
  unsigned lanes = 0;
  std::uint64_t steps = 0;
};

SampleGrid grid_of(const CharacterizationConfig& config) {
  SampleGrid grid;
  grid.lanes =
      config.lanes == 0 ? BitslicedNetlist::kMaxLanes : config.lanes;
  if (grid.lanes > BitslicedNetlist::kMaxLanes) {
    throw std::invalid_argument("characterize: lanes must be <= 512");
  }
  // Toggle counters are exact uint64 accumulators bounded by one flip per
  // lane per (warmup + measured) step; reject budgets where that bound —
  // or the ceil rounding below — cannot be represented, instead of letting
  // the "exact integer counts" invariance contract silently wrap.
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  if (config.cycles > kMax - (grid.lanes - 1)) {
    throw std::overflow_error(
        "characterize: cycles overflows the exact toggle accumulators");
  }
  grid.steps = (config.cycles + grid.lanes - 1) / grid.lanes;
  if (grid.steps > kMax / grid.lanes - config.warmup) {
    throw std::overflow_error(
        "characterize: cycles + warmup overflows the exact toggle "
        "accumulators");
  }
  return grid;
}

/// The DFF idle term multiplies num_dffs into lane_cycles; it is the one
/// accumulator product a representable grid can still overflow. Checked at
/// measurer construction, where the netlist is known.
std::uint64_t checked_idle_lane_cycles(std::size_t num_dffs,
                                       const SampleGrid& grid) {
  const std::uint64_t lane_cycles = std::uint64_t{grid.lanes} * grid.steps;
  if (num_dffs > 1 &&
      lane_cycles > std::numeric_limits<std::uint64_t>::max() / num_dffs) {
    throw std::overflow_error(
        "characterize: cycles * num_dffs overflows the DFF idle-energy "
        "accumulator");
  }
  return num_dffs * lane_cycles;
}

/// Canonical exact energy reduction: DFF idle events, then per-DFF toggle
/// counts in latch order, then per-op toggle counts in program order, each
/// multiplied by its coefficient. Counts are exact integers, so any
/// processing that measures the same sample reduces to the same double —
/// this is the engine/block-width/kernel invariance contract.
double reduce_exact_energy(const BitslicedNetlist& program,
                           std::uint64_t idle_lane_cycles,
                           const std::vector<std::uint64_t>& dff_deltas,
                           const std::vector<std::uint64_t>& op_deltas) {
  double energy =
      program.dff_idle_j() * static_cast<double>(idle_lane_cycles);
  for (std::size_t k = 0; k < dff_deltas.size(); ++k) {
    energy += program.dff_coeffs()[k] * static_cast<double>(dff_deltas[k]);
  }
  for (std::size_t g = 0; g < op_deltas.size(); ++g) {
    energy += program.op_coeffs()[g] * static_cast<double>(op_deltas[g]);
  }
  return energy;
}

/// Measures average energy per lane-cycle for one drive plan; engines are
/// built once per characterization and reused across masks.
struct DriveMeasurer {
  virtual ~DriveMeasurer() = default;
  virtual double energy_per_cycle(const MaskDrive& drive) = 0;
};

/// Fast path: the multi-word bit-sliced engine advances block_lanes lanes
/// per sweep, covering the lane population in sequential passes. Lane
/// streams are a function of the global lane index (LaneRngBlock's
/// first_lane offset), so the pass decomposition is invisible in the
/// per-gate toggle counts.
class BitslicedMeasurer final : public DriveMeasurer {
 public:
  BitslicedMeasurer(SwitchHarness& harness,
                    const CharacterizationConfig& config)
      : config_(config), grid_(grid_of(config)) {
    const unsigned block = config.block_lanes == 0
                               ? BitslicedNetlist::kMaxLanes
                               : config.block_lanes;
    if (block % BitslicedNetlist::kWordLanes != 0 ||
        block > BitslicedNetlist::kMaxLanes) {
      throw std::invalid_argument(
          "characterize: block_lanes must be a multiple of 64 in [64, 512]");
    }
    for (unsigned first = 0; first < grid_.lanes; first += block) {
      passes_.push_back({first, std::min(block, grid_.lanes - first)});
    }
    for (const Pass& pass : passes_) {
      if (engine_for(pass.lanes) == nullptr) {
        engines_.emplace_back(
            pass.lanes,
            BitslicedNetlist(harness.netlist, pass.lanes, config.kernel));
      }
    }
    checked_idle_lane_cycles(engines_.front().second.num_dffs(), grid_);
  }

  double energy_per_cycle(const MaskDrive& drive) override {
    BitslicedNetlist& program = engines_.front().second;
    std::vector<std::uint64_t> op_deltas(program.op_coeffs().size(), 0);
    std::vector<std::uint64_t> dff_deltas(program.num_dffs(), 0);

    for (const Pass& pass : passes_) {
      BitslicedNetlist& engine = *engine_for(pass.lanes);
      const unsigned words = engine.words();
      engine.reset();
      LaneRngBlock rng(config_.seed, words, pass.first_lane);
      std::vector<std::uint64_t> blocks(engine.num_inputs() * words, 0);

      const auto drive_step = [&] {
        std::fill(blocks.begin(), blocks.end(), 0);
        for (const auto& [pin, active] : drive.forced) {
          const std::uint64_t value = active ? ~std::uint64_t{0} : 0;
          for (unsigned w = 0; w < words; ++w) blocks[pin * words + w] = value;
        }
        for (const std::size_t pin : drive.random) {
          rng.next_block(blocks.data() + pin * words);
        }
        engine.step(blocks);
      };

      for (unsigned c = 0; c < config_.warmup; ++c) drive_step();
      const std::vector<std::uint64_t> op_base = engine.op_toggle_counts();
      const std::vector<std::uint64_t> dff_base = engine.dff_toggle_counts();
      for (std::uint64_t c = 0; c < grid_.steps; ++c) drive_step();
      const auto& op_now = engine.op_toggle_counts();
      const auto& dff_now = engine.dff_toggle_counts();
      for (std::size_t g = 0; g < op_deltas.size(); ++g) {
        op_deltas[g] += op_now[g] - op_base[g];
      }
      for (std::size_t k = 0; k < dff_deltas.size(); ++k) {
        dff_deltas[k] += dff_now[k] - dff_base[k];
      }
    }

    const std::uint64_t lane_cycles =
        std::uint64_t{grid_.lanes} * grid_.steps;
    const double energy = reduce_exact_energy(
        program, checked_idle_lane_cycles(program.num_dffs(), grid_),
        dff_deltas, op_deltas);
    return energy / static_cast<double>(lane_cycles);
  }

 private:
  struct Pass {
    std::uint64_t first_lane = 0;
    unsigned lanes = 0;
  };

  BitslicedNetlist* engine_for(unsigned lanes) {
    for (auto& [n, engine] : engines_) {
      if (n == lanes) return &engine;
    }
    return nullptr;
  }

  CharacterizationConfig config_;
  SampleGrid grid_;
  std::vector<Pass> passes_;
  // Engines keyed by pass lane count (at most two: full block + ragged
  // tail); each compiles the lane program once and is reused per mask.
  std::vector<std::pair<unsigned, BitslicedNetlist>> engines_;
};

/// Reference path: the scalar engine driven lane by lane with the exact
/// bit streams the bit-sliced engines consume (BitRng over
/// derive_stream_seed(seed, lane)). A BitslicedNetlist is kept purely as
/// the coefficient/ordering view so the reduction uses the identical
/// doubles in the identical order.
class ScalarMeasurer final : public DriveMeasurer {
 public:
  ScalarMeasurer(SwitchHarness& harness, const CharacterizationConfig& config)
      : harness_(harness),
        config_(config),
        grid_(grid_of(config)),
        program_(harness.netlist, BitslicedNetlist::kWordLanes,
                 LaneKernel::kPortable) {
    checked_idle_lane_cycles(program_.num_dffs(), grid_);
  }

  double energy_per_cycle(const MaskDrive& drive) override {
    Netlist& nl = harness_.netlist;
    const auto& order = nl.level_order();
    const auto& dffs = nl.dff_gates();
    std::vector<std::uint64_t> op_deltas(order.size(), 0);
    std::vector<std::uint64_t> dff_deltas(dffs.size(), 0);
    std::vector<bool> stimulus(nl.inputs().size(), false);

    for (unsigned lane = 0; lane < grid_.lanes; ++lane) {
      nl.reset();
      BitRng bits{Rng{derive_stream_seed(config_.seed, lane)}};

      const auto drive_cycle = [&] {
        std::fill(stimulus.begin(), stimulus.end(), false);
        for (const auto& [pin, active] : drive.forced) stimulus[pin] = active;
        for (const std::size_t pin : drive.random) {
          stimulus[pin] = bits.next_bit();
        }
        nl.step(stimulus);
      };

      for (unsigned c = 0; c < config_.warmup; ++c) drive_cycle();
      const std::vector<std::uint64_t> base = nl.gate_toggle_counts();
      for (std::uint64_t c = 0; c < grid_.steps; ++c) drive_cycle();
      const auto& now = nl.gate_toggle_counts();
      for (std::size_t i = 0; i < order.size(); ++i) {
        op_deltas[i] += now[order[i]] - base[order[i]];
      }
      for (std::size_t k = 0; k < dffs.size(); ++k) {
        dff_deltas[k] += now[dffs[k]] - base[dffs[k]];
      }
    }

    const std::uint64_t lane_cycles =
        std::uint64_t{grid_.lanes} * grid_.steps;
    const double energy = reduce_exact_energy(
        program_, checked_idle_lane_cycles(program_.num_dffs(), grid_),
        dff_deltas, op_deltas);
    return energy / static_cast<double>(lane_cycles);
  }

 private:
  SwitchHarness& harness_;
  CharacterizationConfig config_;
  SampleGrid grid_;
  BitslicedNetlist program_;
};

std::unique_ptr<DriveMeasurer> make_measurer(
    SwitchHarness& harness, const CharacterizationConfig& config) {
  if (config.cycles == 0) {
    throw std::invalid_argument("characterize: cycles must be >= 1");
  }
  if (!harness.netlist.finalized()) {
    throw std::invalid_argument("characterize: netlist not finalized");
  }
  if (config.engine == CharacterizeEngine::kScalar) {
    return std::make_unique<ScalarMeasurer>(harness, config);
  }
  return std::make_unique<BitslicedMeasurer>(harness, config);
}

MaskEnergy entry_for(const SwitchHarness& harness, std::uint32_t mask,
                     double per_cycle) {
  MaskEnergy entry;
  entry.mask = mask;
  entry.energy_per_cycle_j = per_cycle;
  entry.energy_per_bit_j = per_cycle / harness.bits_per_port;
  return entry;
}

unsigned worker_count(const CharacterizationConfig& config,
                      std::size_t n_masks) {
  const unsigned requested =
      config.threads != 0 ? config.threads
                          : std::max(1u, std::thread::hardware_concurrency());
  return static_cast<unsigned>(
      std::min<std::size_t>(requested, std::max<std::size_t>(n_masks, 1)));
}

}  // namespace

std::vector<MaskEnergy> characterize(SwitchHarness& harness,
                                     const std::vector<std::uint32_t>& masks,
                                     const CharacterizationConfig& config) {
  const unsigned workers = worker_count(config, masks.size());
  if (workers <= 1) {
    const auto measurer = make_measurer(harness, config);
    std::vector<MaskEnergy> results;
    results.reserve(masks.size());
    for (const std::uint32_t mask : masks) {
      const MaskDrive drive = harness.drive_schedule(mask);
      results.push_back(
          entry_for(harness, mask, measurer->energy_per_cycle(drive)));
    }
    return results;
  }

  // Worker pool across masks. Every mask's sample and drive plan are pure
  // functions of (config, harness, mask), and results land in results[i]
  // by canonical index, so which worker measures which mask is invisible —
  // output is bit-identical at any thread count. Drive plans are computed
  // up front on the calling thread; each worker owns a private harness
  // copy (the scalar engine mutates its netlist) and a private engine
  // stack, so workers share nothing mutable.
  std::vector<MaskDrive> drives;
  drives.reserve(masks.size());
  for (const std::uint32_t mask : masks) {
    drives.push_back(harness.drive_schedule(mask));
  }
  // Validate config/harness on the calling thread so invalid inputs throw
  // the same exceptions they would serially.
  make_measurer(harness, config);

  std::vector<MaskEnergy> results(masks.size());
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  const auto worker = [&] {
    try {
      SwitchHarness local = harness;
      const auto measurer = make_measurer(local, config);
      while (!failed.load(std::memory_order_relaxed)) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= masks.size()) break;
        results[i] = entry_for(local, masks[i],
                               measurer->energy_per_cycle(drives[i]));
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
      failed.store(true, std::memory_order_relaxed);
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned t = 0; t < workers; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

MaskEnergy characterize_all_active(SwitchHarness& harness,
                                   const CharacterizationConfig& config) {
  const auto measurer = make_measurer(harness, config);
  const MaskDrive drive = harness.drive_schedule_all();
  return entry_for(harness, 0xFFFFFFFFu, measurer->energy_per_cycle(drive));
}

std::vector<double> characterize_two_port_lut(
    SwitchHarness& harness, const CharacterizationConfig& config) {
  if (harness.port_data.size() != 2) {
    throw std::invalid_argument("characterize_two_port_lut: need 2 ports");
  }
  const auto measured = characterize(harness, all_masks(2), config);
  std::vector<double> lut(4, 0.0);
  for (const MaskEnergy& m : measured) lut[m.mask] = m.energy_per_bit_j;
  return lut;
}

}  // namespace sfab::gatelevel
