#include "gatelevel/power_sim.hpp"

#include <stdexcept>

namespace sfab::gatelevel {

std::vector<std::uint32_t> all_masks(unsigned ports) {
  if (ports >= 20) {
    throw std::invalid_argument("all_masks: too many ports for full sweep");
  }
  std::vector<std::uint32_t> masks(1u << ports);
  for (std::uint32_t m = 0; m < masks.size(); ++m) masks[m] = m;
  return masks;
}

std::vector<MaskEnergy> characterize(SwitchHarness& harness,
                                     const std::vector<std::uint32_t>& masks,
                                     const CharacterizationConfig& config) {
  if (config.cycles == 0) {
    throw std::invalid_argument("characterize: cycles must be >= 1");
  }
  const auto ports = static_cast<unsigned>(harness.port_data.size());
  Netlist& nl = harness.netlist;
  if (!nl.finalized()) {
    throw std::invalid_argument("characterize: netlist not finalized");
  }

  Rng rng{config.seed};
  std::vector<MaskEnergy> results;
  results.reserve(masks.size());

  std::vector<bool> stimulus(nl.inputs().size(), false);

  for (const std::uint32_t mask : masks) {
    if (ports < 32 && mask >= (1u << ports)) {
      throw std::invalid_argument("characterize: mask exceeds port count");
    }

    const auto drive_cycle = [&] {
      std::fill(stimulus.begin(), stimulus.end(), false);
      for (unsigned p = 0; p < ports; ++p) {
        const bool active = ((mask >> p) & 1u) != 0;
        if (harness.port_valid[p] != SwitchHarness::npos) {
          stimulus[harness.port_valid[p]] = active;
        }
        if (active) {
          for (const std::size_t idx : harness.port_data[p]) {
            stimulus[idx] = rng.next_bernoulli(0.5);
          }
          for (const std::size_t idx : harness.port_addr[p]) {
            stimulus[idx] = rng.next_bernoulli(0.5);
          }
        }
      }
      nl.step(stimulus);
    };

    nl.reset();
    for (unsigned c = 0; c < config.warmup; ++c) drive_cycle();
    const double energy_before = nl.energy_j();
    for (unsigned c = 0; c < config.cycles; ++c) drive_cycle();
    const double per_cycle =
        (nl.energy_j() - energy_before) / config.cycles;

    MaskEnergy entry;
    entry.mask = mask;
    entry.energy_per_cycle_j = per_cycle;
    entry.energy_per_bit_j = per_cycle / harness.bits_per_port;
    results.push_back(entry);
  }
  return results;
}

std::vector<double> characterize_two_port_lut(
    SwitchHarness& harness, const CharacterizationConfig& config) {
  if (harness.port_data.size() != 2) {
    throw std::invalid_argument("characterize_two_port_lut: need 2 ports");
  }
  const auto measured = characterize(harness, all_masks(2), config);
  std::vector<double> lut(4, 0.0);
  for (const MaskEnergy& m : measured) lut[m.mask] = m.energy_per_bit_j;
  return lut;
}

}  // namespace sfab::gatelevel
