#include "gatelevel/power_sim.hpp"

#include <stdexcept>

#include "gatelevel/bitsliced.hpp"

namespace sfab::gatelevel {

std::vector<std::uint32_t> all_masks(unsigned ports) {
  if (ports >= 20) {
    throw std::invalid_argument("all_masks: too many ports for full sweep");
  }
  std::vector<std::uint32_t> masks(1u << ports);
  for (std::uint32_t m = 0; m < masks.size(); ++m) masks[m] = m;
  return masks;
}

namespace {

/// Reference path: one boolean stream through the scalar engine.
std::vector<MaskEnergy> characterize_scalar(
    SwitchHarness& harness, const std::vector<std::uint32_t>& masks,
    const CharacterizationConfig& config) {
  Netlist& nl = harness.netlist;
  Rng rng{config.seed};
  std::vector<MaskEnergy> results;
  results.reserve(masks.size());

  std::vector<bool> stimulus(nl.inputs().size(), false);

  for (const std::uint32_t mask : masks) {
    const MaskDrive drive = harness.drive_schedule(mask);

    const auto drive_cycle = [&] {
      std::fill(stimulus.begin(), stimulus.end(), false);
      for (const auto& [pin, active] : drive.forced) stimulus[pin] = active;
      for (const std::size_t pin : drive.random) {
        stimulus[pin] = rng.next_bernoulli(0.5);
      }
      nl.step(stimulus);
    };

    nl.reset();
    for (unsigned c = 0; c < config.warmup; ++c) drive_cycle();
    const double energy_before = nl.energy_j();
    for (unsigned c = 0; c < config.cycles; ++c) drive_cycle();
    const double per_cycle = (nl.energy_j() - energy_before) / config.cycles;

    MaskEnergy entry;
    entry.mask = mask;
    entry.energy_per_cycle_j = per_cycle;
    entry.energy_per_bit_j = per_cycle / harness.bits_per_port;
    results.push_back(entry);
  }
  return results;
}

/// Fast path: 64 Monte-Carlo lanes per step. Lane k draws from the
/// decorrelated stream derive_stream_seed(seed, k), so a step advances 64
/// independent random-vector simulations and the sample count per wall
/// second widens by ~64x.
std::vector<MaskEnergy> characterize_bitsliced(
    SwitchHarness& harness, const std::vector<std::uint32_t>& masks,
    const CharacterizationConfig& config) {
  constexpr unsigned kLanes = BitslicedNetlist::kLanes;
  BitslicedNetlist sliced(harness.netlist);
  LaneRng64 rng{config.seed};
  std::vector<MaskEnergy> results;
  results.reserve(masks.size());

  const unsigned steps = (config.cycles + kLanes - 1) / kLanes;
  std::vector<std::uint64_t> words(sliced.num_inputs(), 0);

  for (const std::uint32_t mask : masks) {
    const MaskDrive drive = harness.drive_schedule(mask);

    const auto drive_step = [&] {
      std::fill(words.begin(), words.end(), 0);
      for (const auto& [pin, active] : drive.forced) {
        words[pin] = active ? ~std::uint64_t{0} : 0;
      }
      for (const std::size_t pin : drive.random) {
        words[pin] = rng.next_word();
      }
      sliced.step(words);
    };

    sliced.reset();
    for (unsigned c = 0; c < config.warmup; ++c) drive_step();
    const double energy_before = sliced.energy_j();
    for (unsigned c = 0; c < steps; ++c) drive_step();
    const double per_cycle = (sliced.energy_j() - energy_before) /
                             (static_cast<double>(steps) * kLanes);

    MaskEnergy entry;
    entry.mask = mask;
    entry.energy_per_cycle_j = per_cycle;
    entry.energy_per_bit_j = per_cycle / harness.bits_per_port;
    results.push_back(entry);
  }
  return results;
}

}  // namespace

std::vector<MaskEnergy> characterize(SwitchHarness& harness,
                                     const std::vector<std::uint32_t>& masks,
                                     const CharacterizationConfig& config) {
  if (config.cycles == 0) {
    throw std::invalid_argument("characterize: cycles must be >= 1");
  }
  if (!harness.netlist.finalized()) {
    throw std::invalid_argument("characterize: netlist not finalized");
  }
  return config.engine == CharacterizeEngine::kScalar
             ? characterize_scalar(harness, masks, config)
             : characterize_bitsliced(harness, masks, config);
}

std::vector<double> characterize_two_port_lut(
    SwitchHarness& harness, const CharacterizationConfig& config) {
  if (harness.port_data.size() != 2) {
    throw std::invalid_argument("characterize_two_port_lut: need 2 ports");
  }
  const auto measured = characterize(harness, all_masks(2), config);
  std::vector<double> lut(4, 0.0);
  for (const MaskEnergy& m : measured) lut[m.mask] = m.energy_per_bit_j;
  return lut;
}

}  // namespace sfab::gatelevel
