// Random-vector power characterization — the stand-in for the paper's
// Synopsys Power Compiler flow.
//
// For every requested input-occupancy mask the harness drives active ports
// with fresh random payload (and random addresses) each cycle, holds idle
// ports at zero, lets the netlist settle, and averages the accumulated
// switching energy per cycle. Dividing by the payload width yields energy
// per bit-slot — the exact quantity Table 1 tabulates.
//
// The Monte-Carlo *sample* is fixed by the config alone: `lanes`
// independent streams (lane k draws derive_stream_seed(seed, k)), each
// warmed `warmup` cycles and measured ceil(cycles / lanes) cycles. Engines
// only decide how that sample is processed:
//  * kBitsliced (default): the multi-word bit-sliced engine
//    (gatelevel/bitsliced.hpp) advances `block_lanes` lanes per levelized
//    sweep (default: the widest supported block, 512), covering the
//    population in sequential passes when block_lanes < lanes, with the
//    SIMD kernel picked at runtime (config.kernel).
//  * kScalar: the original one-boolean-per-net reference engine, driven
//    lane by lane with the identical bit streams (BitRng).
// Per-mask energy is reduced from exact integer per-gate toggle counts in
// a canonical order, so characterize() results are bit-identical across
// engines, block widths, kernels, and worker-thread counts — the fast
// path is pinned to the reference not just statistically but double for
// double. Masks are independent samples, so characterize() can fan them
// out across a worker pool (config.threads), one private engine per
// worker, results written back in canonical mask order.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "gatelevel/lane_kernels.hpp"
#include "gatelevel/switch_netlists.hpp"

namespace sfab::gatelevel {

enum class CharacterizeEngine : std::uint8_t {
  kBitsliced,  ///< multi-word lane blocks per netlist sweep (fast path)
  kScalar,     ///< reference engine, lane-serial (baseline / debugging)
};

struct CharacterizationConfig {
  /// Measured Monte-Carlo lane-cycles per occupancy mask (after warm-up).
  /// Covered as `lanes` streams of ceil(cycles / lanes) cycles each
  /// (rounding up to whole cycles, never under-sampling). Budgets whose
  /// toggle accumulators cannot be represented exactly in 64 bits are
  /// rejected with std::overflow_error rather than wrapping.
  std::uint64_t cycles = 4000;
  /// Warm-up cycles excluded from the energy average, per lane.
  unsigned warmup = 64;
  std::uint64_t seed = 0xC0FFEEull;
  CharacterizeEngine engine = CharacterizeEngine::kBitsliced;
  /// Monte-Carlo lane population per mask (1..512); 0 = the widest
  /// supported block (512). This defines the sample — results depend on
  /// it, never on the engine/block/kernel processing choices below.
  unsigned lanes = 0;
  /// kBitsliced: lanes advanced per sweep (multiple of 64, up to 512);
  /// 0 = widest. Narrower blocks process the population in sequential
  /// passes — same result, more passes.
  unsigned block_lanes = 0;
  /// kBitsliced: sweep ISA (kAuto = best the CPU supports).
  LaneKernel kernel = LaneKernel::kAuto;
  /// Worker threads across occupancy masks (masks are independent samples,
  /// so they are embarrassingly parallel). Each worker owns a private
  /// harness copy + engine; results land in canonical mask order, so the
  /// output is bit-identical at any thread count. 0 = one worker per
  /// hardware thread; 1 (default) = serial.
  unsigned threads = 1;
};

struct MaskEnergy {
  std::uint32_t mask = 0;
  /// Average energy per cycle in that state (J).
  double energy_per_cycle_j = 0.0;
  /// Energy per payload bit-slot (energy_per_cycle / bits_per_port), the
  /// Table 1 quantity (J).
  double energy_per_bit_j = 0.0;
};

/// Characterizes the harness for each mask in `masks` (bit p set = port p
/// active). Masks must fit the harness's port count.
[[nodiscard]] std::vector<MaskEnergy> characterize(
    SwitchHarness& harness, const std::vector<std::uint32_t>& masks,
    const CharacterizationConfig& config = {});

/// Characterizes the all-ports-active state — the escape hatch for
/// harnesses with more than 32 ports (wide MUXes), where a uint32_t mask
/// cannot express "all active". The returned mask field is 0xFFFFFFFF.
[[nodiscard]] MaskEnergy characterize_all_active(
    SwitchHarness& harness, const CharacterizationConfig& config = {});

/// All 2^ports masks in order — convenient for 1- and 2-port switches; do
/// not use for wide MUXes (exponential).
[[nodiscard]] std::vector<std::uint32_t> all_masks(unsigned ports);

/// Characterizes a 2-port switch and returns the 4-entry LUT
/// {E[00], E[01], E[10], E[11]} in joules per bit — ready to feed into
/// sfab::VectorIndexedLut.
[[nodiscard]] std::vector<double> characterize_two_port_lut(
    SwitchHarness& harness, const CharacterizationConfig& config = {});

}  // namespace sfab::gatelevel
