// Random-vector power characterization — the stand-in for the paper's
// Synopsys Power Compiler flow.
//
// For every requested input-occupancy mask the harness drives active ports
// with fresh random payload (and random addresses) each cycle, holds idle
// ports at zero, lets the netlist settle, and averages the accumulated
// switching energy per cycle. Dividing by the payload width yields energy
// per bit-slot — the exact quantity Table 1 tabulates.
//
// Two engines produce the average:
//  * kBitsliced (default): the 64-lane engine (gatelevel/bitsliced.hpp)
//    drives 64 independent RNG streams per step, so a mask needs 1/64th
//    the steps for the same Monte-Carlo sample count — the fast path that
//    makes wide LUT sweeps and high sample counts affordable.
//  * kScalar: the original one-boolean-per-net reference engine, retained
//    for equivalence pinning and as the speedup baseline in
//    bench_throughput's gatelevel section.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "gatelevel/switch_netlists.hpp"

namespace sfab::gatelevel {

enum class CharacterizeEngine : std::uint8_t {
  kBitsliced,  ///< 64 Monte-Carlo lanes per netlist sweep (fast path)
  kScalar,     ///< reference engine, one stream (baseline / debugging)
};

struct CharacterizationConfig {
  /// Measured Monte-Carlo cycles per occupancy mask (after warm-up). The
  /// bit-sliced engine covers these in ceil(cycles / 64) steps of 64
  /// lane-cycles each (rounding up to a whole step, never under-sampling).
  unsigned cycles = 4000;
  /// Warm-up cycles excluded from the energy average (per lane: the
  /// bit-sliced engine warms every lane for this many cycles).
  unsigned warmup = 64;
  std::uint64_t seed = 0xC0FFEEull;
  CharacterizeEngine engine = CharacterizeEngine::kBitsliced;
};

struct MaskEnergy {
  std::uint32_t mask = 0;
  /// Average energy per cycle in that state (J).
  double energy_per_cycle_j = 0.0;
  /// Energy per payload bit-slot (energy_per_cycle / bits_per_port), the
  /// Table 1 quantity (J).
  double energy_per_bit_j = 0.0;
};

/// Characterizes the harness for each mask in `masks` (bit p set = port p
/// active). Masks must fit the harness's port count.
[[nodiscard]] std::vector<MaskEnergy> characterize(
    SwitchHarness& harness, const std::vector<std::uint32_t>& masks,
    const CharacterizationConfig& config = {});

/// All 2^ports masks in order — convenient for 1- and 2-port switches; do
/// not use for wide MUXes (exponential).
[[nodiscard]] std::vector<std::uint32_t> all_masks(unsigned ports);

/// Characterizes a 2-port switch and returns the 4-entry LUT
/// {E[00], E[01], E[10], E[11]} in joules per bit — ready to feed into
/// sfab::VectorIndexedLut.
[[nodiscard]] std::vector<double> characterize_two_port_lut(
    SwitchHarness& harness, const CharacterizationConfig& config = {});

}  // namespace sfab::gatelevel
