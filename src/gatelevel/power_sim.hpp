// Random-vector power characterization — the stand-in for the paper's
// Synopsys Power Compiler flow.
//
// For every requested input-occupancy mask the harness drives active ports
// with fresh random payload (and random addresses) each cycle, holds idle
// ports at zero, lets the netlist settle, and averages the accumulated
// switching energy per cycle. Dividing by the payload width yields energy
// per bit-slot — the exact quantity Table 1 tabulates.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "gatelevel/switch_netlists.hpp"

namespace sfab::gatelevel {

struct CharacterizationConfig {
  /// Measured cycles per occupancy mask (after warm-up).
  unsigned cycles = 4000;
  /// Warm-up cycles excluded from the energy average.
  unsigned warmup = 64;
  std::uint64_t seed = 0xC0FFEEull;
};

struct MaskEnergy {
  std::uint32_t mask = 0;
  /// Average energy per cycle in that state (J).
  double energy_per_cycle_j = 0.0;
  /// Energy per payload bit-slot (energy_per_cycle / bits_per_port), the
  /// Table 1 quantity (J).
  double energy_per_bit_j = 0.0;
};

/// Characterizes the harness for each mask in `masks` (bit p set = port p
/// active). Masks must fit the harness's port count.
[[nodiscard]] std::vector<MaskEnergy> characterize(
    SwitchHarness& harness, const std::vector<std::uint32_t>& masks,
    const CharacterizationConfig& config = {});

/// All 2^ports masks in order — convenient for 1- and 2-port switches; do
/// not use for wide MUXes (exponential).
[[nodiscard]] std::vector<std::uint32_t> all_masks(unsigned ports);

/// Characterizes a 2-port switch and returns the 4-entry LUT
/// {E[00], E[01], E[10], E[11]} in joules per bit — ready to feed into
/// sfab::VectorIndexedLut.
[[nodiscard]] std::vector<double> characterize_two_port_lut(
    SwitchHarness& harness, const CharacterizationConfig& config = {});

}  // namespace sfab::gatelevel
