#include "gatelevel/switch_netlists.hpp"

#include <stdexcept>
#include <string>

#include "common/bitops.hpp"

namespace sfab::gatelevel {

namespace {

/// Adds a primary input and returns its index in inputs() order.
std::size_t add_input(Netlist& nl, std::string name,
                      std::vector<NetId>* net_out = nullptr) {
  const NetId net = nl.add_net(std::move(name));
  nl.mark_input(net);
  if (net_out) net_out->push_back(net);
  return nl.inputs().size() - 1;
}

}  // namespace

MaskDrive SwitchHarness::drive_schedule(std::uint32_t mask) const {
  const auto ports = static_cast<unsigned>(port_data.size());
  if (ports < 32 && mask >= (1u << ports)) {
    throw std::invalid_argument("drive_schedule: mask exceeds port count");
  }
  MaskDrive drive;
  for (unsigned p = 0; p < ports; ++p) {
    const bool active = ((mask >> p) & 1u) != 0;
    if (port_valid[p] != npos) drive.forced.emplace_back(port_valid[p], active);
    if (active) {
      drive.random.insert(drive.random.end(), port_data[p].begin(),
                          port_data[p].end());
      drive.random.insert(drive.random.end(), port_addr[p].begin(),
                          port_addr[p].end());
    }
  }
  return drive;
}

MaskDrive SwitchHarness::drive_schedule_all() const {
  MaskDrive drive;
  for (std::size_t p = 0; p < port_data.size(); ++p) {
    if (port_valid[p] != npos) drive.forced.emplace_back(port_valid[p], true);
    drive.random.insert(drive.random.end(), port_data[p].begin(),
                        port_data[p].end());
    drive.random.insert(drive.random.end(), port_addr[p].begin(),
                        port_addr[p].end());
  }
  return drive;
}

SwitchHarness build_crosspoint(unsigned width) {
  if (width < 1) throw std::invalid_argument("build_crosspoint: width >= 1");
  SwitchHarness h;
  Netlist& nl = h.netlist;

  std::vector<NetId> data_nets;
  std::vector<std::size_t> data_idx;
  for (unsigned b = 0; b < width; ++b) {
    data_idx.push_back(add_input(nl, "d" + std::to_string(b), &data_nets));
  }
  std::vector<NetId> enable_net;
  const std::size_t enable_idx = add_input(nl, "en", &enable_net);

  // Enable buffer fans out to all bit cells (this is the input-gate load a
  // row bit sees at every crosspoint).
  const NetId en_buf = nl.add_net("en_buf");
  nl.add_gate(GateType::kBuf, {enable_net[0]}, en_buf);
  for (unsigned b = 0; b < width; ++b) {
    const NetId out = nl.add_net("q" + std::to_string(b));
    nl.add_gate(GateType::kAnd2, {data_nets[b], en_buf}, out);
  }
  nl.finalize();

  h.port_data = {data_idx};
  h.port_addr = {{}};
  h.port_valid = {enable_idx};
  h.bits_per_port = width;
  return h;
}

SwitchHarness build_banyan_switch(unsigned width) {
  if (width < 1) throw std::invalid_argument("build_banyan_switch: width >= 1");
  SwitchHarness h;
  Netlist& nl = h.netlist;

  std::vector<std::vector<NetId>> data_nets(2);
  h.port_data.resize(2);
  h.port_addr.resize(2);
  h.port_valid.resize(2);
  std::vector<NetId> dest(2), valid(2);

  for (unsigned p = 0; p < 2; ++p) {
    const std::string prefix = "p" + std::to_string(p) + "_";
    for (unsigned b = 0; b < width; ++b) {
      h.port_data[p].push_back(
          add_input(nl, prefix + "d" + std::to_string(b), &data_nets[p]));
    }
    std::vector<NetId> tmp;
    h.port_addr[p].push_back(add_input(nl, prefix + "dest", &tmp));
    dest[p] = tmp[0];
    tmp.clear();
    h.port_valid[p] = add_input(nl, prefix + "valid", &tmp);
    valid[p] = tmp[0];
  }

  // --- header data path: allocator -----------------------------------------
  // Input p requests output `dest[p]` when valid. Output 0 is taken from
  // input 0 when input 0 wants it, else from input 1; output 1 dually
  // (fixed-priority arbitration; contention handling lives in the fabric
  // model, the circuit just needs representative switching structure).
  const NetId n_dest0 = nl.add_net("n_dest0");
  nl.add_gate(GateType::kInv, {dest[0]}, n_dest0);
  const NetId n_dest1 = nl.add_net("n_dest1");
  nl.add_gate(GateType::kInv, {dest[1]}, n_dest1);

  const NetId req00 = nl.add_net("req00");  // input 0 wants output 0
  nl.add_gate(GateType::kAnd2, {valid[0], n_dest0}, req00);
  const NetId req01 = nl.add_net("req01");  // input 0 wants output 1
  nl.add_gate(GateType::kAnd2, {valid[0], dest[0]}, req01);
  const NetId req10 = nl.add_net("req10");
  nl.add_gate(GateType::kAnd2, {valid[1], n_dest1}, req10);
  const NetId req11 = nl.add_net("req11");
  nl.add_gate(GateType::kAnd2, {valid[1], dest[1]}, req11);

  // sel_out0 = 1 when output 0 carries input 1 (i.e. input 0 didn't claim it).
  const NetId n_req00 = nl.add_net("n_req00");
  nl.add_gate(GateType::kInv, {req00}, n_req00);
  const NetId sel_out0 = nl.add_net("sel_out0");
  nl.add_gate(GateType::kAnd2, {req10, n_req00}, sel_out0);
  const NetId n_req01 = nl.add_net("n_req01");
  nl.add_gate(GateType::kInv, {req01}, n_req01);
  const NetId sel_out1 = nl.add_net("sel_out1");
  nl.add_gate(GateType::kAnd2, {req11, n_req01}, sel_out1);

  // Allocation register: the grant is latched and held during the packet
  // (paper: "the allocator allocates the output port to the packet and
  // preserves the allocation throughout the packet transmission").
  const NetId sel0_q = nl.add_net("sel0_q");
  nl.add_gate(GateType::kDff, {sel_out0}, sel0_q);
  const NetId sel1_q = nl.add_net("sel1_q");
  nl.add_gate(GateType::kDff, {sel_out1}, sel1_q);

  const NetId out0_en = nl.add_net("out0_en");
  nl.add_gate(GateType::kOr2, {req00, req10}, out0_en);
  const NetId out1_en = nl.add_net("out1_en");
  nl.add_gate(GateType::kOr2, {req01, req11}, out1_en);

  // --- payload data path ----------------------------------------------------
  // Input and output pipeline registers bracket the mux banks: the paper's
  // switches latch data through the fabric's synchronous stages, and the
  // registers carry a realistic share of a 3.3 V switch's datapath energy.
  for (unsigned b = 0; b < width; ++b) {
    const std::string sb = std::to_string(b);
    const NetId r0 = nl.add_net("reg0_" + sb);
    nl.add_gate(GateType::kDff, {data_nets[0][b]}, r0);
    const NetId r1 = nl.add_net("reg1_" + sb);
    nl.add_gate(GateType::kDff, {data_nets[1][b]}, r1);

    const NetId m0 = nl.add_net("mux0_" + sb);
    nl.add_gate(GateType::kMux2, {r0, r1, sel0_q}, m0);
    const NetId g0 = nl.add_net("gate0_" + sb);
    nl.add_gate(GateType::kAnd2, {m0, out0_en}, g0);
    const NetId q0 = nl.add_net("out0_" + sb);
    nl.add_gate(GateType::kDff, {g0}, q0);

    const NetId m1 = nl.add_net("mux1_" + sb);
    nl.add_gate(GateType::kMux2, {r0, r1, sel1_q}, m1);
    const NetId g1 = nl.add_net("gate1_" + sb);
    nl.add_gate(GateType::kAnd2, {m1, out1_en}, g1);
    const NetId q1 = nl.add_net("out1_" + sb);
    nl.add_gate(GateType::kDff, {g1}, q1);
  }
  nl.finalize();
  h.bits_per_port = width;
  return h;
}

SwitchHarness build_sorter_switch(unsigned width, unsigned addr_bits) {
  if (width < 1 || addr_bits < 1) {
    throw std::invalid_argument("build_sorter_switch: width/addr_bits >= 1");
  }
  SwitchHarness h;
  Netlist& nl = h.netlist;

  std::vector<std::vector<NetId>> data_nets(2), addr_nets(2);
  std::vector<NetId> valid(2);
  h.port_data.resize(2);
  h.port_addr.resize(2);
  h.port_valid.resize(2);

  for (unsigned p = 0; p < 2; ++p) {
    const std::string prefix = (p == 0 ? "a_" : "b_");
    for (unsigned b = 0; b < width; ++b) {
      h.port_data[p].push_back(
          add_input(nl, prefix + "d" + std::to_string(b), &data_nets[p]));
    }
    for (unsigned b = 0; b < addr_bits; ++b) {
      h.port_addr[p].push_back(
          add_input(nl, prefix + "addr" + std::to_string(b), &addr_nets[p]));
    }
    std::vector<NetId> tmp;
    h.port_valid[p] = add_input(nl, prefix + "valid", &tmp);
    valid[p] = tmp[0];
  }

  // --- magnitude comparator: gt = (A > B), ripple from LSB to MSB ----------
  // gt_i = a_i & ~b_i  |  (a_i == b_i) & gt_{i-1}
  NetId gt = nl.add_net("gt_seed");  // constant 0 via XOR(x, x)
  nl.add_gate(GateType::kXor2, {addr_nets[0][0], addr_nets[0][0]}, gt);
  for (unsigned b = 0; b < addr_bits; ++b) {
    const std::string sb = std::to_string(b);
    const NetId nb = nl.add_net("nb" + sb);
    nl.add_gate(GateType::kInv, {addr_nets[1][b]}, nb);
    const NetId a_gt_b = nl.add_net("a_gt_b" + sb);
    nl.add_gate(GateType::kAnd2, {addr_nets[0][b], nb}, a_gt_b);
    const NetId eq = nl.add_net("eq" + sb);
    const NetId ne = nl.add_net("ne" + sb);
    nl.add_gate(GateType::kXor2, {addr_nets[0][b], addr_nets[1][b]}, ne);
    nl.add_gate(GateType::kInv, {ne}, eq);
    const NetId carry = nl.add_net("carry" + sb);
    nl.add_gate(GateType::kAnd2, {eq, gt}, carry);
    const NetId gt_next = nl.add_net("gt" + sb);
    nl.add_gate(GateType::kOr2, {a_gt_b, carry}, gt_next);
    gt = gt_next;
  }

  // Idle inputs sort as +infinity: swap also when A is invalid and B valid.
  const NetId n_valid0 = nl.add_net("n_valid0");
  nl.add_gate(GateType::kInv, {valid[0]}, n_valid0);
  const NetId idle_swap = nl.add_net("idle_swap");
  nl.add_gate(GateType::kAnd2, {n_valid0, valid[1]}, idle_swap);
  const NetId swap_now = nl.add_net("swap_now");
  nl.add_gate(GateType::kOr2, {gt, idle_swap}, swap_now);

  // Swap decision latched for the packet duration.
  const NetId swap_q = nl.add_net("swap_q");
  nl.add_gate(GateType::kDff, {swap_now}, swap_q);

  // --- swap stage -----------------------------------------------------------
  // As in the Banyan switch, pipeline registers bracket the swap muxes.
  for (unsigned b = 0; b < width; ++b) {
    const std::string sb = std::to_string(b);
    const NetId ra = nl.add_net("rega" + sb);
    nl.add_gate(GateType::kDff, {data_nets[0][b]}, ra);
    const NetId rb = nl.add_net("regb" + sb);
    nl.add_gate(GateType::kDff, {data_nets[1][b]}, rb);

    const NetId lo = nl.add_net("lo" + sb);
    nl.add_gate(GateType::kMux2, {ra, rb, swap_q}, lo);
    const NetId lo_q = nl.add_net("lo_q" + sb);
    nl.add_gate(GateType::kDff, {lo}, lo_q);
    const NetId hi = nl.add_net("hi" + sb);
    nl.add_gate(GateType::kMux2, {rb, ra, swap_q}, hi);
    const NetId hi_q = nl.add_net("hi_q" + sb);
    nl.add_gate(GateType::kDff, {hi}, hi_q);
  }
  nl.finalize();
  h.bits_per_port = width;
  return h;
}

SwitchHarness build_mux(unsigned n_inputs, unsigned width) {
  if (n_inputs < 2 || !is_pow2(n_inputs)) {
    throw std::invalid_argument("build_mux: n_inputs must be a power of two");
  }
  if (width < 1) throw std::invalid_argument("build_mux: width >= 1");
  const unsigned sel_bits = log2_exact(n_inputs);

  SwitchHarness h;
  Netlist& nl = h.netlist;

  std::vector<std::vector<NetId>> data_nets(n_inputs);
  std::vector<std::vector<std::size_t>> data_idx(n_inputs);
  for (unsigned i = 0; i < n_inputs; ++i) {
    for (unsigned b = 0; b < width; ++b) {
      data_idx[i].push_back(add_input(
          nl, "i" + std::to_string(i) + "_d" + std::to_string(b),
          &data_nets[i]));
    }
  }
  std::vector<NetId> sel(sel_bits);
  std::vector<std::size_t> sel_idx;
  for (unsigned s = 0; s < sel_bits; ++s) {
    std::vector<NetId> tmp;
    sel_idx.push_back(add_input(nl, "sel" + std::to_string(s), &tmp));
    sel[s] = tmp[0];
  }

  // Balanced MUX2 tree per payload bit: level s collapses pairs that differ
  // in select bit s.
  for (unsigned b = 0; b < width; ++b) {
    std::vector<NetId> layer;
    for (unsigned i = 0; i < n_inputs; ++i) layer.push_back(data_nets[i][b]);
    for (unsigned s = 0; s < sel_bits; ++s) {
      std::vector<NetId> next;
      for (std::size_t k = 0; k + 1 < layer.size(); k += 2) {
        const NetId out = nl.add_net("m_b" + std::to_string(b) + "_l" +
                                     std::to_string(s) + "_" +
                                     std::to_string(k / 2));
        nl.add_gate(GateType::kMux2, {layer[k], layer[k + 1], sel[s]}, out);
        next.push_back(out);
      }
      layer = std::move(next);
    }
  }
  nl.finalize();

  // Characterized as a single logical port: the selected input's data pins.
  // The select lines are driven as "address" pins so the characterizer can
  // exercise them.
  h.port_data = {data_idx[0]};
  h.port_addr = {sel_idx};
  h.port_valid = {SwitchHarness::npos};
  h.bits_per_port = width;

  // Keep the remaining inputs known to the harness: append them as extra
  // "ports" without valid pins so the characterizer drives them too when
  // asked for multi-active vectors.
  for (unsigned i = 1; i < n_inputs; ++i) {
    h.port_data.push_back(data_idx[i]);
    h.port_addr.push_back({});
    h.port_valid.push_back(SwitchHarness::npos);
  }
  return h;
}

}  // namespace sfab::gatelevel
