// Gate-level netlist with a levelized two-valued simulator and an
// activity-based power accumulator.
//
// Combinational gates are evaluated in topological order each cycle; DFFs
// latch their D input at the cycle boundary (classic zero-delay cycle
// semantics — adequate for average switching activity, which is what the
// bit-energy LUT characterization needs; glitch power is outside this
// model's scope and is absorbed by the calibration factor).
//
// Gate storage is structure-of-arrays with one shared CSR pin array: the
// scalar settle loop walks flat contiguous memory instead of chasing a
// heap-allocated pin vector per gate, and the 64-lane bit-sliced engine
// (gatelevel/bitsliced.hpp) compiles its lane program straight from the
// same arrays. This class remains the reference scalar engine that the
// bit-sliced engine is pinned against lane-for-lane.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "gatelevel/gates.hpp"

namespace sfab::gatelevel {

using NetId = std::uint32_t;

class Netlist {
 public:
  /// Creates a new net, optionally named (names are for debugging only).
  NetId add_net(std::string name = {});

  /// Declares `net` a primary input (driven by the testbench).
  void mark_input(NetId net);

  /// Adds a gate driving `output` from `inputs` (pin order matters for
  /// kMux2: {a, b, select}). Each net may have at most one driver.
  void add_gate(GateType type, const std::vector<NetId>& inputs, NetId output);

  [[nodiscard]] std::size_t num_nets() const noexcept { return fanout_.size(); }
  [[nodiscard]] std::size_t num_gates() const noexcept {
    return gate_types_.size();
  }
  [[nodiscard]] const std::string& net_name(NetId net) const;

  /// Finalizes the netlist: checks every non-input net has a driver,
  /// levelizes the combinational gates, rejects combinational cycles.
  /// Must be called once before simulation.
  void finalize();

  [[nodiscard]] bool finalized() const noexcept { return finalized_; }

  // --- structure (read-only; the bit-sliced compiler consumes these) -------

  [[nodiscard]] GateType gate_type(std::size_t gate) const {
    return gate_types_[gate];
  }
  [[nodiscard]] NetId gate_output(std::size_t gate) const {
    return gate_outs_[gate];
  }
  /// Input pins of `gate` in pin order (kMux2: {a, b, select}).
  [[nodiscard]] std::span<const NetId> gate_pins(std::size_t gate) const {
    return {gate_pins_.data() + gate_pin_offsets_[gate],
            gate_pin_offsets_[gate + 1] - gate_pin_offsets_[gate]};
  }
  /// Combinational gates in a topological evaluation order (finalized).
  [[nodiscard]] const std::vector<std::size_t>& level_order() const noexcept {
    return level_order_;
  }
  /// DFF gate indices in latch order (finalized).
  [[nodiscard]] const std::vector<std::size_t>& dff_gates() const noexcept {
    return dffs_;
  }
  /// Number of gate input pins loading `net`.
  [[nodiscard]] std::uint32_t fanout(NetId net) const { return fanout_[net]; }
  [[nodiscard]] double energy_scale() const noexcept { return energy_scale_; }

  // --- simulation ----------------------------------------------------------

  /// Resets all nets and DFF states to 0 and clears accumulated energy.
  void reset();

  /// Advances one clock cycle: DFF outputs take their latched values, then
  /// `input_values[i]` is applied to the i-th marked input (in mark order),
  /// then combinational logic settles. Energy for every toggled net is
  /// accumulated. Requires finalize().
  void step(const std::vector<bool>& input_values);

  /// Current value of a net.
  [[nodiscard]] bool value(NetId net) const;

  /// Energy accumulated since reset() (J), including DFF idle clock energy.
  [[nodiscard]] double energy_j() const noexcept { return energy_j_; }

  /// Total output toggles since reset().
  [[nodiscard]] std::uint64_t toggles() const noexcept { return toggles_; }

  /// Per-gate output toggle counts since reset(), indexed by gate id.
  /// Exact integer accumulators: the characterizer reduces these against
  /// the per-gate energy coefficients in a canonical order, which is what
  /// makes the scalar engine's characterization energies bit-identical to
  /// the bit-sliced engines' at any block width (gatelevel/power_sim.hpp).
  [[nodiscard]] const std::vector<std::uint64_t>& gate_toggle_counts()
      const noexcept {
    return gate_toggles_;
  }

  /// Combinational gate evaluations since reset(). With the dirty-bit
  /// settle loop this is typically far below num_gates() * steps: a gate
  /// is only re-evaluated when one of its input nets changed, which cannot
  /// change toggle counts or energy (an unchanged input mask implies an
  /// unchanged output).
  [[nodiscard]] std::uint64_t gate_evaluations() const noexcept {
    return gate_evaluations_;
  }

  /// Global energy scale (technology factor), default 1.0; applied to all
  /// gate coefficients. Set before simulating.
  void set_energy_scale(double scale);

  [[nodiscard]] const std::vector<NetId>& inputs() const noexcept {
    return inputs_;
  }

 private:
  void charge_toggle(std::size_t gate);

  /// Marks every combinational gate fed by `net` for re-evaluation.
  void mark_fanout_dirty(NetId net) {
    for (std::uint32_t k = fanout_gate_offsets_[net];
         k < fanout_gate_offsets_[net + 1]; ++k) {
      dirty_[fanout_gates_[k]] = 1;
    }
  }

  // Gate storage: structure-of-arrays + CSR pin list (index = gate id).
  std::vector<GateType> gate_types_;
  std::vector<NetId> gate_outs_;
  std::vector<std::uint32_t> gate_pin_offsets_{0};  // size num_gates() + 1
  std::vector<NetId> gate_pins_;

  std::vector<std::uint32_t> fanout_;   // per net: number of gate input pins
  std::vector<std::string> names_;
  std::vector<NetId> inputs_;
  std::vector<char> has_driver_;
  std::vector<char> value_;             // current net values
  std::vector<std::size_t> level_order_;  // combinational gates, topo order
  std::vector<std::size_t> dffs_;       // gate indices
  std::vector<char> dff_state_;         // latched Q per DFF
  // CSR net -> combinational fanout gates, for the dirty-bit settle loop.
  std::vector<std::uint32_t> fanout_gate_offsets_;
  std::vector<std::uint32_t> fanout_gates_;
  std::vector<char> dirty_;             // per gate: inputs may have changed
  double energy_scale_ = 1.0;
  double energy_j_ = 0.0;
  std::uint64_t toggles_ = 0;
  std::vector<std::uint64_t> gate_toggles_;  // per gate id, since reset()
  std::uint64_t gate_evaluations_ = 0;
  bool finalized_ = false;
};

}  // namespace sfab::gatelevel
