// AVX2 sweep kernel: 4 lane words (256 Monte-Carlo lanes) per vector op.
//
// This TU is the only one compiled with -mavx2 (per-TU flag, see
// CMakeLists.txt); when the toolchain or target can't build AVX2 the guard
// below reduces it to a stub returning nullptr and resolve_lane_kernel()
// falls back to the portable kernel. The caller has already verified the
// CPU supports AVX2 at runtime before this code can execute.
//
// Equality contract with the portable kernel: flips per op is the same
// integer (popcount of the identically masked diff), and the accumulate
// sequence (`op_toggles[g] += flips; *energy_j += coeff * flips` in op
// order) is identical, so aggregate toggles/energy match bit for bit.
#include "gatelevel/lane_kernels.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

#include <bit>

namespace sfab::gatelevel {
namespace {

/// 4-word lane evaluation, one 256-bit vector = lanes [64v, 64v+256).
inline __m256i evaluate_lanes_256(GateType type, __m256i a, __m256i b,
                                  __m256i s) noexcept {
  const __m256i ones = _mm256_set1_epi64x(-1);
  switch (type) {
    case GateType::kBuf: return a;
    case GateType::kInv: return _mm256_xor_si256(a, ones);
    case GateType::kAnd2: return _mm256_and_si256(a, b);
    case GateType::kOr2: return _mm256_or_si256(a, b);
    case GateType::kNand2:
      return _mm256_xor_si256(_mm256_and_si256(a, b), ones);
    case GateType::kNor2:
      return _mm256_xor_si256(_mm256_or_si256(a, b), ones);
    case GateType::kXor2: return _mm256_xor_si256(a, b);
    case GateType::kMux2:
      // (b & s) | (a & ~s); andnot computes ~first & second.
      return _mm256_or_si256(_mm256_and_si256(b, s),
                             _mm256_andnot_si256(s, a));
    case GateType::kDff: return a;  // unreachable: DFFs are not in the program
  }
  return _mm256_setzero_si256();
}

/// popcount of all 256 bits (no AVX2 vector popcount; 4 scalar popcounts
/// of the extracted words beat a table-lookup shuffle at this size).
inline unsigned popcount_256(__m256i v) noexcept {
  alignas(32) std::uint64_t w[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(w), v);
  return static_cast<unsigned>(std::popcount(w[0]) + std::popcount(w[1]) +
                               std::popcount(w[2]) + std::popcount(w[3]));
}

template <unsigned W>  // W in {4, 8}
std::uint64_t sweep_avx2_fixed(const LaneSweepProgram& program,
                               std::uint64_t* values, unsigned /*words*/,
                               const std::uint64_t* word_masks,
                               std::uint64_t* op_toggles, double* energy_j) {
  constexpr unsigned kVecs = W / 4;
  __m256i masks[kVecs];
  for (unsigned v = 0; v < kVecs; ++v) {
    masks[v] = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(word_masks + 4 * v));
  }
  std::uint64_t total = 0;
  const std::uint32_t* pins = program.pins;
  for (std::size_t g = 0; g < program.n_ops; ++g, pins += 3) {
    const std::uint64_t* a = values + std::size_t{pins[0]} * W;
    const std::uint64_t* b = values + std::size_t{pins[1]} * W;
    const std::uint64_t* s = values + std::size_t{pins[2]} * W;
    std::uint64_t* out = values + std::size_t{program.outs[g]} * W;
    const GateType type = program.types[g];
    unsigned flips = 0;
    for (unsigned v = 0; v < kVecs; ++v) {
      const __m256i av =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + 4 * v));
      const __m256i bv =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + 4 * v));
      const __m256i sv =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s + 4 * v));
      const __m256i next = evaluate_lanes_256(type, av, bv, sv);
      const __m256i old =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(out + 4 * v));
      const __m256i diff =
          _mm256_and_si256(_mm256_xor_si256(old, next), masks[v]);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 4 * v), next);
      flips += popcount_256(diff);
    }
    if (flips != 0) {
      total += flips;
      op_toggles[g] += flips;
      *energy_j += program.coeffs[g] * flips;
    }
  }
  return total;
}

std::uint64_t sweep_avx2(const LaneSweepProgram& program, std::uint64_t* values,
                         unsigned words, const std::uint64_t* word_masks,
                         std::uint64_t* op_toggles, double* energy_j) {
  switch (words) {
    case 4:
      return sweep_avx2_fixed<4>(program, values, words, word_masks,
                                 op_toggles, energy_j);
    case 8:
      return sweep_avx2_fixed<8>(program, values, words, word_masks,
                                 op_toggles, energy_j);
    default:
      // Blocks narrower than one vector (or odd ragged widths): the
      // portable kernel computes the identical result.
      return lane_sweep_portable()(program, values, words, word_masks,
                                   op_toggles, energy_j);
  }
}

}  // namespace

LaneSweepFn lane_sweep_avx2() noexcept {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") ? &sweep_avx2 : nullptr;
#else
  return nullptr;
#endif
}

}  // namespace sfab::gatelevel

#else  // !__AVX2__: toolchain/target can't build the kernel

namespace sfab::gatelevel {
LaneSweepFn lane_sweep_avx2() noexcept { return nullptr; }
}  // namespace sfab::gatelevel

#endif
