// Runtime-dispatched SIMD kernels for the multi-word bit-sliced sweep.
//
// The bit-sliced engine's hot loop is one levelized pass over the
// combinational lane program, W words (64·W Monte-Carlo lanes) per net:
// per op it evaluates the lanes, XORs against the stored block, popcounts
// the masked diff, and accumulates toggles and energy. That inner loop is
// pure word-parallel boolean algebra, so it widens onto AVX-512 (8 words
// per 512-bit vector, in-register vpopcntq), AVX2 (4 words per 256-bit
// vector) and NEON (2 words per 128-bit vector) without changing a
// single observable: every kernel computes the same per-op integer flip
// count and then executes the identical floating-point accumulation
// sequence, so aggregate energy is bit-identical across kernels. The
// portable scalar-word kernel is always available; the best ISA is picked
// at runtime via CPU feature detection (kAuto).
//
// ISA-specific code lives in its own translation unit compiled with
// per-TU flags (see CMakeLists.txt): lane_kernels_avx2.cpp gets -mavx2 and
// lane_kernels_avx512.cpp gets -mavx512f -mavx512vpopcntdq on x86-64
// toolchains that support them and each compiles to a stub elsewhere, so
// the rest of the library never needs a global -march bump.
#pragma once

#include <cstdint>
#include <string_view>

#include "gatelevel/gates.hpp"

namespace sfab::gatelevel {

enum class LaneKernel : std::uint8_t {
  kAuto,      ///< pick the widest ISA the CPU supports (default)
  kPortable,  ///< scalar uint64_t words — always available, the reference
  kAvx2,      ///< 256-bit AVX2 words (x86-64, runtime-detected)
  kAvx512,    ///< 512-bit AVX-512F+VPOPCNTDQ words (x86-64, runtime-detected)
  kNeon,      ///< 128-bit NEON words (aarch64)
};

[[nodiscard]] std::string_view to_string(LaneKernel kernel) noexcept;

/// True when `kernel` can run on this build AND this CPU (kAuto and
/// kPortable are always available).
[[nodiscard]] bool lane_kernel_available(LaneKernel kernel) noexcept;

/// Resolves kAuto to the best available concrete kernel; concrete requests
/// are returned unchanged when available. Throws std::invalid_argument for
/// a concrete kernel this build/CPU cannot run.
[[nodiscard]] LaneKernel resolve_lane_kernel(LaneKernel requested);

/// The compiled combinational lane program (level order, 3 pin slots per
/// op — see gatelevel/bitsliced.hpp, which owns the arrays).
struct LaneSweepProgram {
  const GateType* types = nullptr;
  const std::uint32_t* pins = nullptr;  ///< 3 net-id slots per op
  const std::uint32_t* outs = nullptr;  ///< output net id per op
  const double* coeffs = nullptr;       ///< toggle energy coefficient per op
  std::size_t n_ops = 0;
};

/// One levelized sweep over blocked net storage (`values[net·words + w]`,
/// bit b of word w = lane 64·w + b). `word_masks[w]` selects the countable
/// lanes of word w (all ones except possibly the last word of a ragged
/// block). Per op: lanes are evaluated and stored unconditionally; flips =
/// popcount of the masked diff summed over the block; when flips != 0 the
/// kernel adds flips to op_toggles[g] and coeffs[g]·flips to *energy_j.
/// Returns the total flips added. The store/count/accumulate sequence is
/// identical in every kernel, so results are kernel-invariant bit for bit.
using LaneSweepFn = std::uint64_t (*)(const LaneSweepProgram& program,
                                      std::uint64_t* values, unsigned words,
                                      const std::uint64_t* word_masks,
                                      std::uint64_t* op_toggles,
                                      double* energy_j);

/// Sweep entry point for `kernel` (resolved via resolve_lane_kernel).
[[nodiscard]] LaneSweepFn lane_sweep_fn(LaneKernel kernel);

/// Per-ISA factories; nullptr when the TU was compiled without the ISA or
/// the running CPU lacks it. (lane_sweep_portable never returns nullptr.)
[[nodiscard]] LaneSweepFn lane_sweep_portable() noexcept;
[[nodiscard]] LaneSweepFn lane_sweep_avx2() noexcept;
[[nodiscard]] LaneSweepFn lane_sweep_avx512() noexcept;
[[nodiscard]] LaneSweepFn lane_sweep_neon() noexcept;

}  // namespace sfab::gatelevel
