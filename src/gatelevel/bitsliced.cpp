#include "gatelevel/bitsliced.hpp"

#include <bit>
#include <stdexcept>

#include "common/bitops.hpp"

namespace sfab::gatelevel {

BitslicedNetlist::BitslicedNetlist(const Netlist& source, unsigned lanes,
                                   LaneKernel kernel) {
  if (!source.finalized()) {
    throw std::invalid_argument("BitslicedNetlist: netlist not finalized");
  }
  if (lanes < 1 || lanes > kMaxLanes) {
    throw std::invalid_argument("BitslicedNetlist: lanes must be in [1, 512]");
  }
  lanes_ = lanes;
  words_ = static_cast<unsigned>(bitmask_words(lanes));
  kernel_ = resolve_lane_kernel(kernel);
  sweep_ = lane_sweep_fn(kernel_);
  word_masks_.assign(words_, ~std::uint64_t{0});
  word_masks_.back() = last_word_lane_mask(lanes);

  const double scale = source.energy_scale();

  const auto& order = source.level_order();
  op_types_.reserve(order.size());
  op_pins_.reserve(order.size() * 3);
  op_outs_.reserve(order.size());
  op_coeff_.reserve(order.size());
  for (const std::size_t gi : order) {
    const GateType type = source.gate_type(gi);
    const auto pins = source.gate_pins(gi);
    const NetId out = source.gate_output(gi);
    op_types_.push_back(type);
    // Pad unused pin slots with the first pin: evaluate_lanes ignores them,
    // and a real net keeps the read in-bounds.
    op_pins_.push_back(pins[0]);
    op_pins_.push_back(pins.size() > 1 ? pins[1] : pins[0]);
    op_pins_.push_back(pins.size() > 2 ? pins[2] : pins[0]);
    op_outs_.push_back(out);
    const GateEnergy e = energy_of(type, scale);
    // Same expression as the scalar engine's charge_toggle, so a per-lane
    // replay adds bit-identical doubles.
    op_coeff_.push_back(e.toggle_j + e.per_fanout_j * source.fanout(out));
  }

  const auto& dffs = source.dff_gates();
  dff_d_.reserve(dffs.size());
  dff_q_.reserve(dffs.size());
  dff_coeff_.reserve(dffs.size());
  for (const std::size_t gi : dffs) {
    dff_d_.push_back(source.gate_pins(gi)[0]);
    const NetId out = source.gate_output(gi);
    dff_q_.push_back(out);
    const GateEnergy e = energy_of(GateType::kDff, scale);
    dff_coeff_.push_back(e.toggle_j + e.per_fanout_j * source.fanout(out));
  }
  dff_idle_j_ = energy_of(GateType::kDff, scale).idle_j;

  inputs_ = source.inputs();
  num_nets_ = source.num_nets();
  values_.assign(num_nets_ * words_, 0);
  dff_state_.assign(dffs.size() * words_, 0);
  op_toggles_.assign(op_types_.size(), 0);
  dff_toggles_.assign(dffs.size(), 0);
  lane_energy_.assign(lanes_, 0.0);
  lane_toggles_.assign(lanes_, 0);
}

void BitslicedNetlist::reset() {
  std::fill(values_.begin(), values_.end(), 0);
  std::fill(dff_state_.begin(), dff_state_.end(), 0);
  std::fill(op_toggles_.begin(), op_toggles_.end(), 0);
  std::fill(dff_toggles_.begin(), dff_toggles_.end(), 0);
  std::fill(lane_energy_.begin(), lane_energy_.end(), 0.0);
  std::fill(lane_toggles_.begin(), lane_toggles_.end(), 0);
  energy_j_ = 0.0;
  toggles_ = 0;
}

void BitslicedNetlist::charge_lanes(std::uint64_t diff, unsigned word_index,
                                    double coeff) noexcept {
  for_each_set_bit(diff, word_index * kWordLanes, [&](unsigned lane) {
    lane_energy_[lane] += coeff;
    ++lane_toggles_[lane];
  });
}

/// Generic sweep used while per-lane accounting is on: mirrors the kernel
/// contract exactly (masked flips, `if (flips)` accumulate in op order) and
/// additionally replays each toggling lane's charge in ascending lane order.
void BitslicedNetlist::sweep_accounting() noexcept {
  const std::size_t n_ops = op_types_.size();
  const unsigned W = words_;
  const NetId* pins = op_pins_.data();
  std::uint64_t diffs[kMaxWords];
  for (std::size_t g = 0; g < n_ops; ++g, pins += 3) {
    const std::uint64_t* a = values_.data() + std::size_t{pins[0]} * W;
    const std::uint64_t* b = values_.data() + std::size_t{pins[1]} * W;
    const std::uint64_t* s = values_.data() + std::size_t{pins[2]} * W;
    std::uint64_t* out = values_.data() + std::size_t{op_outs_[g]} * W;
    const GateType type = op_types_[g];
    unsigned flips = 0;
    for (unsigned w = 0; w < W; ++w) {
      const std::uint64_t next = evaluate_lanes(type, a[w], b[w], s[w]);
      diffs[w] = (out[w] ^ next) & word_masks_[w];
      flips += static_cast<unsigned>(std::popcount(diffs[w]));
      out[w] = next;
    }
    if (flips != 0) {
      toggles_ += flips;
      op_toggles_[g] += flips;
      energy_j_ += op_coeff_[g] * flips;
      for (unsigned w = 0; w < W; ++w) charge_lanes(diffs[w], w, op_coeff_[g]);
    }
  }
}

void BitslicedNetlist::step(const std::vector<std::uint64_t>& input_blocks) {
  const unsigned W = words_;
  if (input_blocks.size() != inputs_.size() * W) {
    throw std::invalid_argument("step: wrong number of input words");
  }

  // 1. DFF outputs present their latched blocks; every active lane burns
  // clock energy every cycle (the scalar engine's idle charge, lanes()
  // wide).
  for (std::size_t k = 0; k < dff_q_.size(); ++k) {
    const std::uint64_t* q = dff_state_.data() + k * W;
    std::uint64_t* slot = values_.data() + std::size_t{dff_q_[k]} * W;
    std::uint64_t diffs[kMaxWords];
    unsigned flips = 0;
    for (unsigned w = 0; w < W; ++w) {
      diffs[w] = (slot[w] ^ q[w]) & word_masks_[w];
      flips += static_cast<unsigned>(std::popcount(diffs[w]));
      slot[w] = q[w];
    }
    energy_j_ += dff_idle_j_ * static_cast<double>(lanes_);
    if (flips != 0) {
      toggles_ += flips;
      dff_toggles_[k] += flips;
      energy_j_ += dff_coeff_[k] * flips;
    }
    if (lane_accounting_) {
      // Scalar order per lane: idle first, then the toggle charge.
      for (unsigned lane = 0; lane < lanes_; ++lane) {
        lane_energy_[lane] += dff_idle_j_;
      }
      for (unsigned w = 0; w < W; ++w) charge_lanes(diffs[w], w, dff_coeff_[k]);
    }
  }

  // 2. Primary inputs (no charge; see the scalar engine).
  for (std::size_t k = 0; k < inputs_.size(); ++k) {
    std::uint64_t* slot = values_.data() + std::size_t{inputs_[k]} * W;
    const std::uint64_t* in = input_blocks.data() + k * W;
    for (unsigned w = 0; w < W; ++w) slot[w] = in[w];
  }

  // 3. Combinational level sweep, 64·words() lanes per op, through the
  // resolved SIMD kernel (or the generic accounting sweep while per-lane
  // replay is enabled). No dirty tracking: random-vector stimulus keeps
  // most of the cone active, and the straight sweep over the flat arrays
  // is what the lane widening pays for.
  if (lane_accounting_) {
    sweep_accounting();
  } else {
    LaneSweepProgram program;
    program.types = op_types_.data();
    program.pins = op_pins_.data();
    program.outs = op_outs_.data();
    program.coeffs = op_coeff_.data();
    program.n_ops = op_types_.size();
    toggles_ += sweep_(program, values_.data(), W, word_masks_.data(),
                       op_toggles_.data(), &energy_j_);
  }

  // 4. DFFs capture D for the next cycle, in every lane.
  for (std::size_t k = 0; k < dff_d_.size(); ++k) {
    const std::uint64_t* d = values_.data() + std::size_t{dff_d_[k]} * W;
    std::uint64_t* state = dff_state_.data() + k * W;
    for (unsigned w = 0; w < W; ++w) state[w] = d[w];
  }
}

std::uint64_t BitslicedNetlist::word(NetId net, unsigned w) const {
  if (net >= num_nets_) throw std::out_of_range("word: bad net");
  if (w >= words_) throw std::out_of_range("word: bad word index");
  return values_[std::size_t{net} * words_ + w];
}

bool BitslicedNetlist::value(NetId net, unsigned lane) const {
  if (lane >= lanes_) throw std::out_of_range("value: bad lane");
  return ((word(net, lane / kWordLanes) >> (lane % kWordLanes)) & 1u) != 0;
}

double BitslicedNetlist::lane_energy_j(unsigned lane) const {
  if (lane >= lanes_) throw std::out_of_range("lane_energy_j: bad lane");
  return lane_energy_[lane];
}

std::uint64_t BitslicedNetlist::lane_toggles(unsigned lane) const {
  if (lane >= lanes_) throw std::out_of_range("lane_toggles: bad lane");
  return lane_toggles_[lane];
}

}  // namespace sfab::gatelevel
