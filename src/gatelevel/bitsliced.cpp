#include "gatelevel/bitsliced.hpp"

#include <bit>
#include <stdexcept>

namespace sfab::gatelevel {

BitslicedNetlist::BitslicedNetlist(const Netlist& source) {
  if (!source.finalized()) {
    throw std::invalid_argument("BitslicedNetlist: netlist not finalized");
  }
  const double scale = source.energy_scale();

  const auto& order = source.level_order();
  op_types_.reserve(order.size());
  op_pins_.reserve(order.size() * 3);
  op_outs_.reserve(order.size());
  op_coeff_.reserve(order.size());
  for (const std::size_t gi : order) {
    const GateType type = source.gate_type(gi);
    const auto pins = source.gate_pins(gi);
    const NetId out = source.gate_output(gi);
    op_types_.push_back(type);
    // Pad unused pin slots with the first pin: evaluate_lanes ignores them,
    // and a real net keeps the read in-bounds.
    op_pins_.push_back(pins[0]);
    op_pins_.push_back(pins.size() > 1 ? pins[1] : pins[0]);
    op_pins_.push_back(pins.size() > 2 ? pins[2] : pins[0]);
    op_outs_.push_back(out);
    const GateEnergy e = energy_of(type, scale);
    // Same expression as the scalar engine's charge_toggle, so a per-lane
    // replay adds bit-identical doubles.
    op_coeff_.push_back(e.toggle_j + e.per_fanout_j * source.fanout(out));
  }

  const auto& dffs = source.dff_gates();
  dff_d_.reserve(dffs.size());
  dff_q_.reserve(dffs.size());
  dff_coeff_.reserve(dffs.size());
  for (const std::size_t gi : dffs) {
    dff_d_.push_back(source.gate_pins(gi)[0]);
    const NetId out = source.gate_output(gi);
    dff_q_.push_back(out);
    const GateEnergy e = energy_of(GateType::kDff, scale);
    dff_coeff_.push_back(e.toggle_j + e.per_fanout_j * source.fanout(out));
  }
  dff_idle_j_ = energy_of(GateType::kDff, scale).idle_j;

  inputs_ = source.inputs();
  values_.assign(source.num_nets(), 0);
  dff_state_.assign(dffs.size(), 0);
}

void BitslicedNetlist::reset() {
  std::fill(values_.begin(), values_.end(), 0);
  std::fill(dff_state_.begin(), dff_state_.end(), 0);
  energy_j_ = 0.0;
  toggles_ = 0;
  lane_energy_.fill(0.0);
  lane_toggles_.fill(0);
}

void BitslicedNetlist::charge_lanes(std::uint64_t diff,
                                    double coeff) noexcept {
  while (diff != 0) {
    const unsigned lane = static_cast<unsigned>(std::countr_zero(diff));
    diff &= diff - 1;
    lane_energy_[lane] += coeff;
    ++lane_toggles_[lane];
  }
}

void BitslicedNetlist::step(const std::vector<std::uint64_t>& input_words) {
  if (input_words.size() != inputs_.size()) {
    throw std::invalid_argument("step: wrong number of input words");
  }

  // 1. DFF outputs present their latched words; every lane burns clock
  // energy every cycle (the scalar engine's idle charge, 64 lanes wide).
  for (std::size_t k = 0; k < dff_q_.size(); ++k) {
    const std::uint64_t q = dff_state_[k];
    std::uint64_t& slot = values_[dff_q_[k]];
    const std::uint64_t diff = slot ^ q;
    slot = q;
    energy_j_ += dff_idle_j_ * static_cast<double>(kLanes);
    if (diff != 0) {
      const int flips = std::popcount(diff);
      toggles_ += static_cast<std::uint64_t>(flips);
      energy_j_ += dff_coeff_[k] * flips;
    }
    if (lane_accounting_) {
      // Scalar order per lane: idle first, then the toggle charge.
      for (unsigned lane = 0; lane < kLanes; ++lane) {
        lane_energy_[lane] += dff_idle_j_;
      }
      charge_lanes(diff, dff_coeff_[k]);
    }
  }

  // 2. Primary inputs (no charge; see the scalar engine).
  for (std::size_t k = 0; k < inputs_.size(); ++k) {
    values_[inputs_[k]] = input_words[k];
  }

  // 3. Combinational level sweep, 64 lanes per op. No dirty tracking:
  // random-vector stimulus keeps most of the cone active, and the straight
  // sweep over the flat arrays is what the 64x widening pays for.
  const std::size_t n_ops = op_types_.size();
  const NetId* pins = op_pins_.data();
  for (std::size_t g = 0; g < n_ops; ++g, pins += 3) {
    const std::uint64_t out =
        evaluate_lanes(op_types_[g], values_[pins[0]], values_[pins[1]],
                       values_[pins[2]]);
    std::uint64_t& slot = values_[op_outs_[g]];
    const std::uint64_t diff = slot ^ out;
    if (diff != 0) {
      slot = out;
      const int flips = std::popcount(diff);
      toggles_ += static_cast<std::uint64_t>(flips);
      energy_j_ += op_coeff_[g] * flips;
      if (lane_accounting_) charge_lanes(diff, op_coeff_[g]);
    }
  }

  // 4. DFFs capture D for the next cycle, in every lane.
  for (std::size_t k = 0; k < dff_d_.size(); ++k) {
    dff_state_[k] = values_[dff_d_[k]];
  }
}

std::uint64_t BitslicedNetlist::word(NetId net) const {
  if (net >= values_.size()) throw std::out_of_range("word: bad net");
  return values_[net];
}

bool BitslicedNetlist::value(NetId net, unsigned lane) const {
  if (lane >= kLanes) throw std::out_of_range("value: bad lane");
  return ((word(net) >> lane) & 1u) != 0;
}

double BitslicedNetlist::lane_energy_j(unsigned lane) const {
  if (lane >= kLanes) throw std::out_of_range("lane_energy_j: bad lane");
  return lane_energy_[lane];
}

std::uint64_t BitslicedNetlist::lane_toggles(unsigned lane) const {
  if (lane >= kLanes) throw std::out_of_range("lane_toggles: bad lane");
  return lane_toggles_[lane];
}

}  // namespace sfab::gatelevel
