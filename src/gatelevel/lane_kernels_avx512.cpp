// AVX-512 sweep kernel: 8 lane words (512 Monte-Carlo lanes) per vector op.
//
// This TU is the only one compiled with -mavx512f -mavx512vpopcntdq (per-TU
// flags, see CMakeLists.txt); when the toolchain can't build AVX-512 the
// guard below reduces it to a stub returning nullptr and
// resolve_lane_kernel() falls back to AVX2 or portable. The caller has
// already verified the CPU supports both AVX-512F and VPOPCNTDQ at runtime
// before this code can execute.
//
// What VPOPCNTDQ buys over the AVX2 kernel: the diff popcount happens
// in-register (`vpopcntq` per 64-bit lane word + horizontal add) instead of
// storing the vector and popcounting 4 extracted scalars, and a full
// 512-lane block is one vector op per net instead of two.
//
// Equality contract with the portable kernel: flips per op is the same
// integer (popcount of the identically masked diff), and the accumulate
// sequence (`op_toggles[g] += flips; *energy_j += coeff * flips` in op
// order) is identical, so aggregate toggles/energy match bit for bit.
#include "gatelevel/lane_kernels.hpp"

#if defined(__AVX512F__) && defined(__AVX512VPOPCNTDQ__)

#include <immintrin.h>

namespace sfab::gatelevel {
namespace {

/// 8-word lane evaluation, one 512-bit vector = lanes [64v, 64v+512).
inline __m512i evaluate_lanes_512(GateType type, __m512i a, __m512i b,
                                  __m512i s) noexcept {
  const __m512i ones = _mm512_set1_epi64(-1);
  switch (type) {
    case GateType::kBuf: return a;
    case GateType::kInv: return _mm512_xor_si512(a, ones);
    case GateType::kAnd2: return _mm512_and_si512(a, b);
    case GateType::kOr2: return _mm512_or_si512(a, b);
    case GateType::kNand2:
      return _mm512_xor_si512(_mm512_and_si512(a, b), ones);
    case GateType::kNor2:
      return _mm512_xor_si512(_mm512_or_si512(a, b), ones);
    case GateType::kXor2: return _mm512_xor_si512(a, b);
    case GateType::kMux2:
      // (b & s) | (a & ~s); andnot computes ~first & second.
      return _mm512_or_si512(_mm512_and_si512(b, s),
                             _mm512_andnot_si512(s, a));
    case GateType::kDff: return a;  // unreachable: DFFs are not in the program
  }
  return _mm512_setzero_si512();
}

std::uint64_t sweep_avx512_8(const LaneSweepProgram& program,
                             std::uint64_t* values, unsigned /*words*/,
                             const std::uint64_t* word_masks,
                             std::uint64_t* op_toggles, double* energy_j) {
  const __m512i mask = _mm512_loadu_si512(word_masks);
  std::uint64_t total = 0;
  const std::uint32_t* pins = program.pins;
  for (std::size_t g = 0; g < program.n_ops; ++g, pins += 3) {
    const __m512i a = _mm512_loadu_si512(values + std::size_t{pins[0]} * 8);
    const __m512i b = _mm512_loadu_si512(values + std::size_t{pins[1]} * 8);
    const __m512i s = _mm512_loadu_si512(values + std::size_t{pins[2]} * 8);
    std::uint64_t* out = values + std::size_t{program.outs[g]} * 8;
    const __m512i next = evaluate_lanes_512(program.types[g], a, b, s);
    const __m512i old = _mm512_loadu_si512(out);
    const __m512i diff =
        _mm512_and_si512(_mm512_xor_si512(old, next), mask);
    _mm512_storeu_si512(out, next);
    // vpopcntq: per-word popcount in-register, then a horizontal add —
    // replaces the AVX2 kernel's store + 4 scalar popcounts.
    const auto flips = static_cast<unsigned>(
        _mm512_reduce_add_epi64(_mm512_popcnt_epi64(diff)));
    if (flips != 0) {
      total += flips;
      op_toggles[g] += flips;
      *energy_j += program.coeffs[g] * flips;
    }
  }
  return total;
}

std::uint64_t sweep_avx512(const LaneSweepProgram& program,
                           std::uint64_t* values, unsigned words,
                           const std::uint64_t* word_masks,
                           std::uint64_t* op_toggles, double* energy_j) {
  if (words == 8) {
    return sweep_avx512_8(program, values, words, word_masks, op_toggles,
                          energy_j);
  }
  // Blocks narrower than one zmm vector: the AVX2 / portable kernels
  // compute the identical result, so delegate rather than duplicate.
  const LaneSweepFn avx2 = lane_sweep_avx2();
  return (avx2 != nullptr ? avx2 : lane_sweep_portable())(
      program, values, words, word_masks, op_toggles, energy_j);
}

}  // namespace

LaneSweepFn lane_sweep_avx512() noexcept {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  return (__builtin_cpu_supports("avx512f") &&
          __builtin_cpu_supports("avx512vpopcntdq"))
             ? &sweep_avx512
             : nullptr;
#else
  return nullptr;
#endif
}

}  // namespace sfab::gatelevel

#else  // !(__AVX512F__ && __AVX512VPOPCNTDQ__): toolchain can't build it

namespace sfab::gatelevel {
LaneSweepFn lane_sweep_avx512() noexcept { return nullptr; }
}  // namespace sfab::gatelevel

#endif
