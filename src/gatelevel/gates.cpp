#include "gatelevel/gates.hpp"

#include "common/units.hpp"

namespace sfab::gatelevel {

std::string_view to_string(GateType type) noexcept {
  switch (type) {
    case GateType::kBuf: return "BUF";
    case GateType::kInv: return "INV";
    case GateType::kAnd2: return "AND2";
    case GateType::kOr2: return "OR2";
    case GateType::kNand2: return "NAND2";
    case GateType::kNor2: return "NOR2";
    case GateType::kXor2: return "XOR2";
    case GateType::kMux2: return "MUX2";
    case GateType::kDff: return "DFF";
  }
  return "?";
}

unsigned input_count(GateType type) noexcept {
  switch (type) {
    case GateType::kBuf:
    case GateType::kInv:
    case GateType::kDff:
      return 1;
    case GateType::kAnd2:
    case GateType::kOr2:
    case GateType::kNand2:
    case GateType::kNor2:
    case GateType::kXor2:
      return 2;
    case GateType::kMux2:
      return 3;
  }
  return 0;
}

bool evaluate(GateType type, std::uint32_t inputs) noexcept {
  const bool a = (inputs & 1u) != 0;
  const bool b = (inputs & 2u) != 0;
  const bool s = (inputs & 4u) != 0;
  switch (type) {
    case GateType::kBuf: return a;
    case GateType::kInv: return !a;
    case GateType::kAnd2: return a && b;
    case GateType::kOr2: return a || b;
    case GateType::kNand2: return !(a && b);
    case GateType::kNor2: return !(a || b);
    case GateType::kXor2: return a != b;
    case GateType::kMux2: return s ? b : a;
    case GateType::kDff: return a;  // value latched by the netlist engine
  }
  return false;
}

GateEnergy energy_of(GateType type, double scale) noexcept {
  // At 3.3 V a rail-to-rail swing of ~8 fF (drain + local wire) is
  // 1/2 * C * V^2 ~ 44 fJ; larger cells carry proportionally more internal
  // capacitance. DFFs are assumed clock-gated when data is idle, so their
  // per-cycle idle (clock buffer) energy is small.
  using units::fJ;
  GateEnergy e{};
  switch (type) {
    case GateType::kBuf:
      e = {50.0 * fJ, 18.0 * fJ, 0.0};
      break;
    case GateType::kInv:
      e = {40.0 * fJ, 18.0 * fJ, 0.0};
      break;
    case GateType::kAnd2:
    case GateType::kOr2:
      e = {70.0 * fJ, 18.0 * fJ, 0.0};
      break;
    case GateType::kNand2:
    case GateType::kNor2:
      e = {55.0 * fJ, 18.0 * fJ, 0.0};
      break;
    case GateType::kXor2:
      e = {100.0 * fJ, 18.0 * fJ, 0.0};
      break;
    case GateType::kMux2:
      e = {90.0 * fJ, 18.0 * fJ, 0.0};
      break;
    case GateType::kDff:
      // Clock node fires on data captures; clock-gated otherwise.
      e = {130.0 * fJ, 18.0 * fJ, 1.5 * fJ};
      break;
  }
  return {e.toggle_j * scale, e.per_fanout_j * scale, e.idle_j * scale};
}

}  // namespace sfab::gatelevel
