#include "gatelevel/netlist.hpp"

#include <stdexcept>

namespace sfab::gatelevel {

NetId Netlist::add_net(std::string name) {
  if (finalized_) throw std::logic_error("add_net after finalize");
  const auto id = static_cast<NetId>(fanout_.size());
  fanout_.push_back(0);
  names_.push_back(std::move(name));
  has_driver_.push_back(0);
  value_.push_back(0);
  return id;
}

void Netlist::mark_input(NetId net) {
  if (finalized_) throw std::logic_error("mark_input after finalize");
  if (net >= fanout_.size()) throw std::out_of_range("mark_input: bad net");
  if (has_driver_[net]) {
    throw std::invalid_argument("mark_input: net already driven by a gate");
  }
  has_driver_[net] = 1;
  inputs_.push_back(net);
}

void Netlist::add_gate(GateType type, const std::vector<NetId>& inputs,
                       NetId output) {
  if (finalized_) throw std::logic_error("add_gate after finalize");
  if (inputs.size() != input_count(type)) {
    throw std::invalid_argument("add_gate: wrong number of input pins");
  }
  for (NetId in : inputs) {
    if (in >= fanout_.size()) throw std::out_of_range("add_gate: bad input");
  }
  if (output >= fanout_.size()) throw std::out_of_range("add_gate: bad output");
  if (has_driver_[output]) {
    throw std::invalid_argument("add_gate: output net already driven");
  }
  has_driver_[output] = 1;
  for (NetId in : inputs) ++fanout_[in];
  gate_types_.push_back(type);
  gate_outs_.push_back(output);
  gate_pins_.insert(gate_pins_.end(), inputs.begin(), inputs.end());
  gate_pin_offsets_.push_back(static_cast<std::uint32_t>(gate_pins_.size()));
}

const std::string& Netlist::net_name(NetId net) const {
  if (net >= names_.size()) throw std::out_of_range("net_name: bad net");
  return names_[net];
}

void Netlist::finalize() {
  if (finalized_) throw std::logic_error("finalize called twice");
  for (NetId net = 0; net < has_driver_.size(); ++net) {
    if (!has_driver_[net]) {
      throw std::logic_error("finalize: net '" + names_[net] +
                             "' has no driver and is not an input");
    }
  }

  // Kahn levelization over combinational gates. DFF outputs act as sources
  // (their Q is known at the start of each cycle), so DFFs never join the
  // combinational order.
  std::vector<char> net_ready(fanout_.size(), 0);
  for (NetId in : inputs_) net_ready[in] = 1;
  for (std::size_t i = 0; i < num_gates(); ++i) {
    if (gate_types_[i] == GateType::kDff) {
      dffs_.push_back(i);
      net_ready[gate_outs_[i]] = 1;
    }
  }
  dff_state_.assign(dffs_.size(), 0);

  std::vector<char> scheduled(num_gates(), 0);
  level_order_.clear();
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = 0; i < num_gates(); ++i) {
      if (scheduled[i] || gate_types_[i] == GateType::kDff) continue;
      bool ready = true;
      for (NetId in : gate_pins(i)) {
        if (!net_ready[in]) {
          ready = false;
          break;
        }
      }
      if (ready) {
        scheduled[i] = 1;
        net_ready[gate_outs_[i]] = 1;
        level_order_.push_back(i);
        progress = true;
      }
    }
  }
  for (std::size_t i = 0; i < num_gates(); ++i) {
    if (!scheduled[i] && gate_types_[i] != GateType::kDff) {
      throw std::logic_error(
          "finalize: combinational cycle detected (gate output net '" +
          names_[gate_outs_[i]] + "')");
    }
  }

  // CSR adjacency net -> combinational fanout gates, for the dirty-bit
  // settle loop: a gate re-evaluates only when one of its inputs changed.
  fanout_gate_offsets_.assign(fanout_.size() + 1, 0);
  for (std::size_t i = 0; i < num_gates(); ++i) {
    if (gate_types_[i] == GateType::kDff) continue;
    for (const NetId in : gate_pins(i)) ++fanout_gate_offsets_[in + 1];
  }
  for (std::size_t n = 1; n < fanout_gate_offsets_.size(); ++n) {
    fanout_gate_offsets_[n] += fanout_gate_offsets_[n - 1];
  }
  fanout_gates_.resize(fanout_gate_offsets_.back());
  std::vector<std::uint32_t> fill = fanout_gate_offsets_;
  for (std::size_t i = 0; i < num_gates(); ++i) {
    if (gate_types_[i] == GateType::kDff) continue;
    for (const NetId in : gate_pins(i)) {
      fanout_gates_[fill[in]++] = static_cast<std::uint32_t>(i);
    }
  }
  // Every gate starts dirty: net values are all zero but a gate's settled
  // output for all-zero inputs may be one (NOT, NAND, ...), so the first
  // step must evaluate everything — exactly what the pre-dirty-bit loop
  // did.
  dirty_.assign(num_gates(), 1);
  gate_toggles_.assign(num_gates(), 0);

  finalized_ = true;
}

void Netlist::reset() {
  if (!finalized_) throw std::logic_error("reset before finalize");
  std::fill(value_.begin(), value_.end(), 0);
  std::fill(dff_state_.begin(), dff_state_.end(), 0);
  std::fill(dirty_.begin(), dirty_.end(), 1);  // re-settle from scratch
  std::fill(gate_toggles_.begin(), gate_toggles_.end(), 0);
  energy_j_ = 0.0;
  toggles_ = 0;
  gate_evaluations_ = 0;
}

void Netlist::set_energy_scale(double scale) {
  if (scale <= 0.0) throw std::invalid_argument("set_energy_scale: scale <= 0");
  energy_scale_ = scale;
}

void Netlist::charge_toggle(std::size_t gate) {
  const GateEnergy e = energy_of(gate_types_[gate], energy_scale_);
  energy_j_ += e.toggle_j + e.per_fanout_j * fanout_[gate_outs_[gate]];
  ++toggles_;
  ++gate_toggles_[gate];
}

void Netlist::step(const std::vector<bool>& input_values) {
  if (!finalized_) throw std::logic_error("step before finalize");
  if (input_values.size() != inputs_.size()) {
    throw std::invalid_argument("step: wrong number of input values");
  }

  // 1. DFF outputs present their latched state; clock energy always burns.
  for (std::size_t k = 0; k < dffs_.size(); ++k) {
    const std::size_t gi = dffs_[k];
    const NetId out = gate_outs_[gi];
    const bool q = dff_state_[k] != 0;
    energy_j_ += energy_of(gate_types_[gi], energy_scale_).idle_j;
    if (value_[out] != static_cast<char>(q)) {
      value_[out] = static_cast<char>(q);
      charge_toggle(gi);
      mark_fanout_dirty(out);
    }
  }

  // 2. Primary inputs (testbench drives these; their wire energy belongs to
  // the upstream driver, so no charge here).
  for (std::size_t k = 0; k < inputs_.size(); ++k) {
    const char next = input_values[k] ? 1 : 0;
    if (value_[inputs_[k]] != next) {
      value_[inputs_[k]] = next;
      mark_fanout_dirty(inputs_[k]);
    }
  }

  // 3. Combinational settle in topological order, skipping gates none of
  // whose inputs changed since their last evaluation: an unchanged input
  // mask evaluates to the unchanged output, so skipped gates contribute
  // neither toggles nor energy — identical results, far fewer
  // evaluations on stable netlists.
  for (std::size_t gi : level_order_) {
    if (!dirty_[gi]) continue;
    dirty_[gi] = 0;
    ++gate_evaluations_;
    const NetId* pins = gate_pins_.data() + gate_pin_offsets_[gi];
    const std::uint32_t pin_count =
        gate_pin_offsets_[gi + 1] - gate_pin_offsets_[gi];
    std::uint32_t in_mask = 0;
    for (std::uint32_t pin = 0; pin < pin_count; ++pin) {
      in_mask |= static_cast<std::uint32_t>(value_[pins[pin]] != 0) << pin;
    }
    const bool out = evaluate(gate_types_[gi], in_mask);
    const NetId out_net = gate_outs_[gi];
    if (value_[out_net] != static_cast<char>(out)) {
      value_[out_net] = static_cast<char>(out);
      charge_toggle(gi);
      mark_fanout_dirty(out_net);
    }
  }

  // 4. DFFs capture D for the next cycle.
  for (std::size_t k = 0; k < dffs_.size(); ++k) {
    dff_state_[k] = value_[gate_pins_[gate_pin_offsets_[dffs_[k]]]];
  }
}

bool Netlist::value(NetId net) const {
  if (net >= value_.size()) throw std::out_of_range("value: bad net");
  return value_[net] != 0;
}

}  // namespace sfab::gatelevel
