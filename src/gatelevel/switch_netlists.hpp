// Synthetic gate netlists of the paper's node switches.
//
// These are representative implementations of the circuits the paper
// characterized with Synopsys Power Compiler ("a few hundred gates to 10K
// gates"): a crossbar crosspoint (tri-state style pass element), the Banyan
// 2x2 binary switch (destination-bit allocator + payload muxes), the
// Batcher 2x2 sorting switch (address comparator + swap muxes) and the
// N-input MUX (a MUX2 tree per bit). Characterizing them with
// gatelevel::characterize() yields per-bit energy LUTs comparable in shape
// to Table 1; absolute values depend on the cell-energy calibration.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "gatelevel/netlist.hpp"

namespace sfab::gatelevel {

/// Testbench drive plan for one input-occupancy mask. All indices refer to
/// positions in `netlist.inputs()` order. Built by
/// SwitchHarness::drive_schedule and shared by the scalar and bit-sliced
/// characterization drivers (and the lane-equivalence tests), so every
/// consumer draws randomness for the same pins in the same order.
struct MaskDrive {
  /// Pins held at a constant each cycle: the valid pin of every port that
  /// has one, true when the port is active. All other non-random pins
  /// (idle ports' data/addr) stay 0.
  std::vector<std::pair<std::size_t, bool>> forced;
  /// Pins redrawn uniformly at random every cycle, in drive order: for
  /// each active port ascending, data pins then addr pins.
  std::vector<std::size_t> random;
};

/// A netlist plus the testbench hookup the characterizer needs. All index
/// vectors refer to positions in `netlist.inputs()` order.
struct SwitchHarness {
  Netlist netlist;
  /// Per port: indices of that port's payload data pins.
  std::vector<std::vector<std::size_t>> port_data;
  /// Per port: indices of that port's destination-address pins (may be
  /// empty for switches that don't look at addresses).
  std::vector<std::vector<std::size_t>> port_addr;
  /// Per port: index of the packet-present (valid) pin, or npos if the
  /// switch has no valid pin.
  std::vector<std::size_t> port_valid;
  /// Payload width per port in bits.
  unsigned bits_per_port = 0;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// The drive plan for `mask` (bit p set = port p active). Throws when
  /// the mask addresses ports the harness doesn't have.
  [[nodiscard]] MaskDrive drive_schedule(std::uint32_t mask) const;

  /// The drive plan with *every* port active — the escape hatch for
  /// harnesses with more than 32 ports (wide MUXes), where a uint32_t
  /// occupancy mask cannot express "all active". Identical to
  /// drive_schedule((1 << ports) - 1) when that mask fits.
  [[nodiscard]] MaskDrive drive_schedule_all() const;
};

/// Crossbar crosspoint: per payload bit an enable-gated pass element.
/// 1 port; the enable pin doubles as the valid pin.
[[nodiscard]] SwitchHarness build_crosspoint(unsigned width);

/// Banyan 2x2 binary switch: two input ports with a 1-bit destination
/// address each; an allocator decides the output assignment and a register
/// holds it through the packet; payload crosses two W-wide 2:1 mux banks.
[[nodiscard]] SwitchHarness build_banyan_switch(unsigned width);

/// Batcher 2x2 sorting switch: `addr_bits`-wide magnitude comparator plus a
/// swap stage; packets leave in (min, max) destination order.
[[nodiscard]] SwitchHarness build_sorter_switch(unsigned width,
                                                unsigned addr_bits = 5);

/// N-input MUX: per payload bit a balanced MUX2 tree; log2(N) select lines.
/// Modeled as one logical port (the selected one) for characterization.
[[nodiscard]] SwitchHarness build_mux(unsigned n_inputs, unsigned width);

}  // namespace sfab::gatelevel
