// NEON sweep kernel: 2 lane words (128 Monte-Carlo lanes) per vector op.
//
// Guarded to aarch64, where NEON is architecturally baseline (no runtime
// detection needed) and the vaddvq horizontal reductions exist; on every
// other target this TU compiles to a stub returning nullptr and the
// portable kernel is used. Same bit-exactness contract as the AVX2 kernel:
// identical per-op flip integers, identical accumulate sequence.
#include "gatelevel/lane_kernels.hpp"

#if defined(__aarch64__) && defined(__ARM_NEON)

#include <arm_neon.h>

namespace sfab::gatelevel {
namespace {

inline uint64x2_t evaluate_lanes_128(GateType type, uint64x2_t a, uint64x2_t b,
                                     uint64x2_t s) noexcept {
  const uint64x2_t ones = vdupq_n_u64(~std::uint64_t{0});
  switch (type) {
    case GateType::kBuf: return a;
    case GateType::kInv: return veorq_u64(a, ones);
    case GateType::kAnd2: return vandq_u64(a, b);
    case GateType::kOr2: return vorrq_u64(a, b);
    case GateType::kNand2: return veorq_u64(vandq_u64(a, b), ones);
    case GateType::kNor2: return veorq_u64(vorrq_u64(a, b), ones);
    case GateType::kXor2: return veorq_u64(a, b);
    case GateType::kMux2:
      // (b & s) | (a & ~s); vbicq computes first & ~second.
      return vorrq_u64(vandq_u64(b, s), vbicq_u64(a, s));
    case GateType::kDff: return a;  // unreachable: DFFs are not in the program
  }
  return vdupq_n_u64(0);
}

/// popcount of all 128 bits: per-byte counts, summed across the vector.
inline unsigned popcount_128(uint64x2_t v) noexcept {
  return vaddvq_u8(vcntq_u8(vreinterpretq_u8_u64(v)));
}

template <unsigned W>  // W in {2, 4, 8}
std::uint64_t sweep_neon_fixed(const LaneSweepProgram& program,
                               std::uint64_t* values, unsigned /*words*/,
                               const std::uint64_t* word_masks,
                               std::uint64_t* op_toggles, double* energy_j) {
  constexpr unsigned kVecs = W / 2;
  uint64x2_t masks[kVecs];
  for (unsigned v = 0; v < kVecs; ++v) {
    masks[v] = vld1q_u64(word_masks + 2 * v);
  }
  std::uint64_t total = 0;
  const std::uint32_t* pins = program.pins;
  for (std::size_t g = 0; g < program.n_ops; ++g, pins += 3) {
    const std::uint64_t* a = values + std::size_t{pins[0]} * W;
    const std::uint64_t* b = values + std::size_t{pins[1]} * W;
    const std::uint64_t* s = values + std::size_t{pins[2]} * W;
    std::uint64_t* out = values + std::size_t{program.outs[g]} * W;
    const GateType type = program.types[g];
    unsigned flips = 0;
    for (unsigned v = 0; v < kVecs; ++v) {
      const uint64x2_t av = vld1q_u64(a + 2 * v);
      const uint64x2_t bv = vld1q_u64(b + 2 * v);
      const uint64x2_t sv = vld1q_u64(s + 2 * v);
      const uint64x2_t next = evaluate_lanes_128(type, av, bv, sv);
      const uint64x2_t old = vld1q_u64(out + 2 * v);
      const uint64x2_t diff = vandq_u64(veorq_u64(old, next), masks[v]);
      vst1q_u64(out + 2 * v, next);
      flips += popcount_128(diff);
    }
    if (flips != 0) {
      total += flips;
      op_toggles[g] += flips;
      *energy_j += program.coeffs[g] * flips;
    }
  }
  return total;
}

std::uint64_t sweep_neon(const LaneSweepProgram& program, std::uint64_t* values,
                         unsigned words, const std::uint64_t* word_masks,
                         std::uint64_t* op_toggles, double* energy_j) {
  switch (words) {
    case 2:
      return sweep_neon_fixed<2>(program, values, words, word_masks,
                                 op_toggles, energy_j);
    case 4:
      return sweep_neon_fixed<4>(program, values, words, word_masks,
                                 op_toggles, energy_j);
    case 8:
      return sweep_neon_fixed<8>(program, values, words, word_masks,
                                 op_toggles, energy_j);
    default:
      return lane_sweep_portable()(program, values, words, word_masks,
                                   op_toggles, energy_j);
  }
}

}  // namespace

LaneSweepFn lane_sweep_neon() noexcept { return &sweep_neon; }

}  // namespace sfab::gatelevel

#else  // not aarch64 NEON

namespace sfab::gatelevel {
LaneSweepFn lane_sweep_neon() noexcept { return nullptr; }
}  // namespace sfab::gatelevel

#endif
