// Portable scalar-word sweep kernel: plain uint64_t boolean algebra, one
// word at a time. This is the reference implementation every SIMD kernel
// is differentially fuzzed against (tests/test_bitsliced_fuzz.cpp), and
// the fallback resolve_lane_kernel() lands on when no vector ISA is
// available. Block widths 1/2/4/8 are monomorphized so the per-op word
// loop fully unrolls; odd widths (ragged lane populations) take the
// runtime-width loop.
#include <bit>

#include "gatelevel/lane_kernels.hpp"

namespace sfab::gatelevel {
namespace {

template <unsigned W>
std::uint64_t sweep_fixed(const LaneSweepProgram& program,
                          std::uint64_t* values, unsigned /*words*/,
                          const std::uint64_t* word_masks,
                          std::uint64_t* op_toggles, double* energy_j) {
  std::uint64_t total = 0;
  const std::uint32_t* pins = program.pins;
  for (std::size_t g = 0; g < program.n_ops; ++g, pins += 3) {
    const std::uint64_t* a = values + std::size_t{pins[0]} * W;
    const std::uint64_t* b = values + std::size_t{pins[1]} * W;
    const std::uint64_t* s = values + std::size_t{pins[2]} * W;
    std::uint64_t* out = values + std::size_t{program.outs[g]} * W;
    const GateType type = program.types[g];
    unsigned flips = 0;
    for (unsigned w = 0; w < W; ++w) {
      const std::uint64_t next = evaluate_lanes(type, a[w], b[w], s[w]);
      flips += static_cast<unsigned>(
          std::popcount((out[w] ^ next) & word_masks[w]));
      out[w] = next;
    }
    if (flips != 0) {
      total += flips;
      op_toggles[g] += flips;
      *energy_j += program.coeffs[g] * flips;
    }
  }
  return total;
}

std::uint64_t sweep_any(const LaneSweepProgram& program, std::uint64_t* values,
                        unsigned words, const std::uint64_t* word_masks,
                        std::uint64_t* op_toggles, double* energy_j) {
  std::uint64_t total = 0;
  const std::uint32_t* pins = program.pins;
  for (std::size_t g = 0; g < program.n_ops; ++g, pins += 3) {
    const std::uint64_t* a = values + std::size_t{pins[0]} * words;
    const std::uint64_t* b = values + std::size_t{pins[1]} * words;
    const std::uint64_t* s = values + std::size_t{pins[2]} * words;
    std::uint64_t* out = values + std::size_t{program.outs[g]} * words;
    const GateType type = program.types[g];
    unsigned flips = 0;
    for (unsigned w = 0; w < words; ++w) {
      const std::uint64_t next = evaluate_lanes(type, a[w], b[w], s[w]);
      flips += static_cast<unsigned>(
          std::popcount((out[w] ^ next) & word_masks[w]));
      out[w] = next;
    }
    if (flips != 0) {
      total += flips;
      op_toggles[g] += flips;
      *energy_j += program.coeffs[g] * flips;
    }
  }
  return total;
}

std::uint64_t sweep_portable(const LaneSweepProgram& program,
                             std::uint64_t* values, unsigned words,
                             const std::uint64_t* word_masks,
                             std::uint64_t* op_toggles, double* energy_j) {
  switch (words) {
    case 1:
      return sweep_fixed<1>(program, values, words, word_masks, op_toggles,
                            energy_j);
    case 2:
      return sweep_fixed<2>(program, values, words, word_masks, op_toggles,
                            energy_j);
    case 4:
      return sweep_fixed<4>(program, values, words, word_masks, op_toggles,
                            energy_j);
    case 8:
      return sweep_fixed<8>(program, values, words, word_masks, op_toggles,
                            energy_j);
    default:
      return sweep_any(program, values, words, word_masks, op_toggles,
                       energy_j);
  }
}

}  // namespace

LaneSweepFn lane_sweep_portable() noexcept { return &sweep_portable; }

}  // namespace sfab::gatelevel
