// Kernel registry: runtime CPU feature detection and kAuto resolution.
#include <stdexcept>
#include <string>

#include "gatelevel/lane_kernels.hpp"

namespace sfab::gatelevel {

std::string_view to_string(LaneKernel kernel) noexcept {
  switch (kernel) {
    case LaneKernel::kAuto: return "auto";
    case LaneKernel::kPortable: return "portable";
    case LaneKernel::kAvx2: return "avx2";
    case LaneKernel::kAvx512: return "avx512";
    case LaneKernel::kNeon: return "neon";
  }
  return "?";
}

bool lane_kernel_available(LaneKernel kernel) noexcept {
  switch (kernel) {
    case LaneKernel::kAuto:
    case LaneKernel::kPortable:
      return true;
    case LaneKernel::kAvx2:
      return lane_sweep_avx2() != nullptr;
    case LaneKernel::kAvx512:
      return lane_sweep_avx512() != nullptr;
    case LaneKernel::kNeon:
      return lane_sweep_neon() != nullptr;
  }
  return false;
}

LaneKernel resolve_lane_kernel(LaneKernel requested) {
  if (requested == LaneKernel::kAuto) {
    if (lane_sweep_avx512() != nullptr) return LaneKernel::kAvx512;
    if (lane_sweep_avx2() != nullptr) return LaneKernel::kAvx2;
    if (lane_sweep_neon() != nullptr) return LaneKernel::kNeon;
    return LaneKernel::kPortable;
  }
  if (!lane_kernel_available(requested)) {
    throw std::invalid_argument("lane kernel unavailable on this CPU/build: " +
                                std::string(to_string(requested)));
  }
  return requested;
}

LaneSweepFn lane_sweep_fn(LaneKernel kernel) {
  switch (resolve_lane_kernel(kernel)) {
    case LaneKernel::kAvx2: return lane_sweep_avx2();
    case LaneKernel::kAvx512: return lane_sweep_avx512();
    case LaneKernel::kNeon: return lane_sweep_neon();
    default: return lane_sweep_portable();
  }
}

}  // namespace sfab::gatelevel
