// 64-lane bit-sliced gate-level simulator.
//
// Every net holds one uint64_t whose 64 bits are 64 *independent*
// Monte-Carlo simulation lanes: lane k of every word is a complete
// two-valued simulation that never observes any other lane. One levelized
// sweep over the flattened gate program therefore advances 64 random-vector
// characterization streams at the cost of roughly one scalar cycle — the
// classic bit-parallel (PROOFS-style) widening of gate-level Monte Carlo.
//
// Toggles are counted with popcount(old ^ new) and energy accumulates as
// popcount * per-gate coefficient, so the aggregate accumulators advance
// once per gate, not once per lane. For correctness pinning, an optional
// per-lane accounting mode replays the exact accumulation order of the
// reference scalar engine (gatelevel/netlist.hpp) lane by lane: driving
// lane k with the bit stream a scalar run consumes yields *bit-identical*
// per-lane toggle counts and energies (tests/test_bitsliced.cpp).
//
// The lane program is compiled once from a finalized Netlist: combinational
// gates flatten to structure-of-arrays {type, 3 pin slots, output,
// coefficient} in level order (no per-gate heap pin vectors, no dirty
// tracking — under random stimulus nearly everything is dirty anyway, and
// the straight level-sweep is branch-predictable and prefetch-friendly).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "gatelevel/netlist.hpp"

namespace sfab::gatelevel {

class BitslicedNetlist {
 public:
  static constexpr unsigned kLanes = 64;

  /// Compiles the lane program from `source`, which must be finalized.
  /// The energy scale is captured at construction time.
  explicit BitslicedNetlist(const Netlist& source);

  [[nodiscard]] std::size_t num_nets() const noexcept {
    return values_.size();
  }
  [[nodiscard]] std::size_t num_inputs() const noexcept {
    return inputs_.size();
  }

  /// Resets all lanes of every net and DFF to 0 and clears all
  /// accumulators (aggregate and per-lane).
  void reset();

  /// Advances one clock cycle in every lane: DFF outputs present their
  /// latched words, `input_words[i]` drives the i-th primary input (bit k =
  /// lane k's value), then the combinational level sweep settles all lanes
  /// at once and the DFFs capture D for the next cycle.
  void step(const std::vector<std::uint64_t>& input_words);

  /// Current 64-lane word of a net (bit k = lane k).
  [[nodiscard]] std::uint64_t word(NetId net) const;
  /// Lane k's current boolean value of a net.
  [[nodiscard]] bool value(NetId net, unsigned lane) const;

  /// Energy accumulated across all lanes since reset() (J), including DFF
  /// idle clock energy in every lane. Accumulated popcount-at-a-time, so
  /// it is the fast-path aggregate — statistically identical to, but not
  /// the same floating-point sum as, adding the per-lane series.
  [[nodiscard]] double energy_j() const noexcept { return energy_j_; }
  /// Total output toggles across all lanes since reset().
  [[nodiscard]] std::uint64_t toggles() const noexcept { return toggles_; }

  // --- per-lane accounting (the scalar-equivalence harness) ---------------

  /// Enables per-lane toggle/energy accumulators. Off by default: the
  /// per-lane energy replay costs up to 64 floating-point adds per
  /// toggling gate and exists to pin the engine against the scalar
  /// reference, not for production characterization.
  void set_lane_accounting(bool enabled) noexcept {
    lane_accounting_ = enabled;
  }
  [[nodiscard]] bool lane_accounting() const noexcept {
    return lane_accounting_;
  }

  /// Lane k's energy since reset() (J). The accumulation order per lane is
  /// exactly the scalar engine's (DFF idle + toggle charges in latch
  /// order, then toggling combinational gates in level order), so a lane
  /// driven with a scalar run's bit stream matches that run's energy_j()
  /// bit for bit. Requires lane accounting enabled since the last reset.
  [[nodiscard]] double lane_energy_j(unsigned lane) const;
  /// Lane k's toggle count since reset().
  [[nodiscard]] std::uint64_t lane_toggles(unsigned lane) const;

  [[nodiscard]] const std::vector<NetId>& inputs() const noexcept {
    return inputs_;
  }

 private:
  void charge_lanes(std::uint64_t diff, double coeff) noexcept;

  // Combinational lane program in level order. Pins are padded to three
  // slots (net 0 always exists; padded reads feed pins the gate ignores).
  std::vector<GateType> op_types_;
  std::vector<NetId> op_pins_;   // 3 slots per op
  std::vector<NetId> op_outs_;
  std::vector<double> op_coeff_;  // toggle_j + per_fanout_j * fanout(out)

  std::vector<NetId> dff_d_;
  std::vector<NetId> dff_q_;
  std::vector<double> dff_coeff_;
  double dff_idle_j_ = 0.0;  // per DFF per lane-cycle

  std::vector<NetId> inputs_;
  std::vector<std::uint64_t> values_;     // per net, bit k = lane k
  std::vector<std::uint64_t> dff_state_;  // latched Q word per DFF

  double energy_j_ = 0.0;
  std::uint64_t toggles_ = 0;
  bool lane_accounting_ = false;
  std::array<double, kLanes> lane_energy_{};
  std::array<std::uint64_t, kLanes> lane_toggles_{};
};

}  // namespace sfab::gatelevel
