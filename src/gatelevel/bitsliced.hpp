// Multi-word bit-sliced gate-level simulator (64–512 Monte-Carlo lanes).
//
// Every net holds a *lane block* of W uint64_t words whose 64·W bits are
// 64·W independent Monte-Carlo simulation lanes (bit b of word w = lane
// 64·w + b): lane k of every block is a complete two-valued simulation
// that never observes any other lane. One levelized sweep over the
// flattened gate program therefore advances up to 512 random-vector
// characterization streams at the cost of roughly one scalar cycle — the
// classic bit-parallel (PROOFS-style) widening of gate-level Monte Carlo,
// generalized past one machine word so the inner loop can ride SIMD
// registers (gatelevel/lane_kernels.hpp: portable / AVX2 / NEON, selected
// at runtime via CPU feature detection).
//
// The active lane count may be ragged (not a multiple of 64): toggle
// counting masks the dead tail lanes of the last word, so they contribute
// neither toggles nor energy, while live lanes behave identically to any
// other block width. Aggregate toggles are counted popcount(old ^ new)
// at a time and energy accumulates as popcount * per-gate coefficient;
// additionally every gate keeps an exact integer toggle counter
// (op_toggle_counts / dff_toggle_counts) — order-free, so the counts are
// bit-identical across block widths, kernels, and pass decompositions,
// which is what lets characterize() produce engine-invariant energies.
//
// For correctness pinning, an optional per-lane accounting mode replays
// the exact accumulation order of the reference scalar engine
// (gatelevel/netlist.hpp) lane by lane: driving lane k with the bit
// stream a scalar run consumes yields *bit-identical* per-lane toggle
// counts and energies (tests/test_bitsliced.cpp, test_bitsliced_fuzz.cpp).
//
// The lane program is compiled once from a finalized Netlist:
// combinational gates flatten to structure-of-arrays {type, 3 pin slots,
// output, coefficient} in level order (no per-gate heap pin vectors, no
// dirty tracking — under random stimulus nearly everything is dirty
// anyway, and the straight level-sweep is branch-predictable and
// prefetch-friendly).
#pragma once

#include <cstdint>
#include <vector>

#include "gatelevel/lane_kernels.hpp"
#include "gatelevel/netlist.hpp"

namespace sfab::gatelevel {

class BitslicedNetlist {
 public:
  static constexpr unsigned kWordLanes = 64;  ///< lanes per uint64_t word
  static constexpr unsigned kMaxWords = 8;    ///< widest supported block
  static constexpr unsigned kMaxLanes = kWordLanes * kMaxWords;  // 512
  /// Back-compat alias: the default (single-word) block width.
  static constexpr unsigned kLanes = kWordLanes;

  /// Compiles the lane program from `source`, which must be finalized.
  /// The energy scale is captured at construction time. `lanes` is the
  /// active Monte-Carlo lane count (1..kMaxLanes, possibly ragged);
  /// `kernel` picks the sweep ISA (kAuto = best the CPU supports).
  explicit BitslicedNetlist(const Netlist& source, unsigned lanes = kWordLanes,
                            LaneKernel kernel = LaneKernel::kAuto);

  [[nodiscard]] std::size_t num_nets() const noexcept { return num_nets_; }
  [[nodiscard]] std::size_t num_inputs() const noexcept {
    return inputs_.size();
  }
  /// Active Monte-Carlo lanes per block.
  [[nodiscard]] unsigned lanes() const noexcept { return lanes_; }
  /// Words per lane block (= ceil(lanes / 64)).
  [[nodiscard]] unsigned words() const noexcept { return words_; }
  /// The concrete sweep kernel this engine resolved to.
  [[nodiscard]] LaneKernel kernel() const noexcept { return kernel_; }

  /// Resets all lanes of every net and DFF to 0 and clears all
  /// accumulators (aggregate, per-gate, and per-lane).
  void reset();

  /// Advances one clock cycle in every lane: DFF outputs present their
  /// latched blocks, input i is driven by input_blocks[i*words() ..
  /// i*words()+words()) (bit b of word w = lane 64·w + b), then the
  /// combinational level sweep settles all lanes at once and the DFFs
  /// capture D for the next cycle.
  void step(const std::vector<std::uint64_t>& input_blocks);

  /// Word `w` of a net's current lane block (bit b = lane 64·w + b).
  [[nodiscard]] std::uint64_t word(NetId net, unsigned w = 0) const;
  /// Lane k's current boolean value of a net (k < lanes()).
  [[nodiscard]] bool value(NetId net, unsigned lane) const;

  /// Energy accumulated across all active lanes since reset() (J),
  /// including DFF idle clock energy in every lane. Accumulated
  /// popcount-at-a-time, so it is the fast-path aggregate — statistically
  /// identical to, but not the same floating-point sum as, adding the
  /// per-lane series. Bit-identical across kernels at a fixed block
  /// width; across widths use the per-gate counts below.
  [[nodiscard]] double energy_j() const noexcept { return energy_j_; }
  /// Total output toggles across all active lanes since reset().
  [[nodiscard]] std::uint64_t toggles() const noexcept { return toggles_; }

  // --- exact per-gate accounting (block-width-invariant) -------------------

  /// Per-op toggle counts since reset(), in program (level) order. Pure
  /// integer accumulators: identical across block widths, kernels, and
  /// sequential pass decompositions of the same lane population.
  [[nodiscard]] const std::vector<std::uint64_t>& op_toggle_counts()
      const noexcept {
    return op_toggles_;
  }
  /// Per-DFF toggle counts since reset(), in latch order.
  [[nodiscard]] const std::vector<std::uint64_t>& dff_toggle_counts()
      const noexcept {
    return dff_toggles_;
  }
  /// Per-op toggle energy coefficients (toggle_j + per_fanout_j · fanout),
  /// program order — the same doubles the scalar engine charges per event.
  [[nodiscard]] const std::vector<double>& op_coeffs() const noexcept {
    return op_coeff_;
  }
  /// Per-DFF toggle energy coefficients, latch order.
  [[nodiscard]] const std::vector<double>& dff_coeffs() const noexcept {
    return dff_coeff_;
  }
  /// DFF clock energy per lane-cycle (J).
  [[nodiscard]] double dff_idle_j() const noexcept { return dff_idle_j_; }
  [[nodiscard]] std::size_t num_dffs() const noexcept {
    return dff_q_.size();
  }

  // --- per-lane accounting (the scalar-equivalence harness) ----------------

  /// Enables per-lane toggle/energy accumulators. Off by default: the
  /// per-lane energy replay costs up to lanes() floating-point adds per
  /// toggling gate and exists to pin the engine against the scalar
  /// reference, not for production characterization. While enabled the
  /// sweep always runs the generic portable path (aggregates stay
  /// bit-identical to the kernel path at the same block width).
  void set_lane_accounting(bool enabled) noexcept {
    lane_accounting_ = enabled;
  }
  [[nodiscard]] bool lane_accounting() const noexcept {
    return lane_accounting_;
  }

  /// Lane k's energy since reset() (J). The accumulation order per lane is
  /// exactly the scalar engine's (DFF idle + toggle charges in latch
  /// order, then toggling combinational gates in level order), so a lane
  /// driven with a scalar run's bit stream matches that run's energy_j()
  /// bit for bit. Requires lane accounting enabled since the last reset.
  [[nodiscard]] double lane_energy_j(unsigned lane) const;
  /// Lane k's toggle count since reset().
  [[nodiscard]] std::uint64_t lane_toggles(unsigned lane) const;

  [[nodiscard]] const std::vector<NetId>& inputs() const noexcept {
    return inputs_;
  }

 private:
  void charge_lanes(std::uint64_t diff, unsigned word_index,
                    double coeff) noexcept;
  void sweep_accounting() noexcept;

  // Combinational lane program in level order. Pins are padded to three
  // slots (net 0 always exists; padded reads feed pins the gate ignores).
  std::vector<GateType> op_types_;
  std::vector<NetId> op_pins_;   // 3 slots per op
  std::vector<NetId> op_outs_;
  std::vector<double> op_coeff_;  // toggle_j + per_fanout_j * fanout(out)

  std::vector<NetId> dff_d_;
  std::vector<NetId> dff_q_;
  std::vector<double> dff_coeff_;
  double dff_idle_j_ = 0.0;  // per DFF per lane-cycle

  std::vector<NetId> inputs_;
  std::size_t num_nets_ = 0;
  unsigned lanes_ = kWordLanes;
  unsigned words_ = 1;
  LaneKernel kernel_ = LaneKernel::kPortable;
  LaneSweepFn sweep_ = nullptr;
  std::vector<std::uint64_t> word_masks_;  // countable lanes per word
  std::vector<std::uint64_t> values_;      // blocked: [net * words_ + w]
  std::vector<std::uint64_t> dff_state_;   // latched Q block per DFF

  double energy_j_ = 0.0;
  std::uint64_t toggles_ = 0;
  std::vector<std::uint64_t> op_toggles_;   // per op, program order
  std::vector<std::uint64_t> dff_toggles_;  // per DFF, latch order
  bool lane_accounting_ = false;
  std::vector<double> lane_energy_;          // per active lane
  std::vector<std::uint64_t> lane_toggles_;  // per active lane
};

}  // namespace sfab::gatelevel
