// Standard-cell gate library for the gate-level power characterizer.
//
// The paper derives its node-switch bit-energy LUTs (Table 1) by simulating
// each switch circuit with Synopsys Power Compiler in a 0.18 um library.
// That tool is proprietary; src/gatelevel is our substitute: a small
// two-valued, levelized netlist simulator over this cell library. Energy
// per cell is the classic activity model — every output toggle charges the
// cell's switched capacitance (intrinsic + fanout load) at Vdd — with
// coefficients representative of a 0.18 um / 3.3 V standard-cell library.
#pragma once

#include <cstdint>
#include <string_view>

namespace sfab::gatelevel {

enum class GateType : std::uint8_t {
  kBuf,    ///< 1-input buffer
  kInv,    ///< 1-input inverter
  kAnd2,   ///< 2-input AND
  kOr2,    ///< 2-input OR
  kNand2,  ///< 2-input NAND
  kNor2,   ///< 2-input NOR
  kXor2,   ///< 2-input XOR
  kMux2,   ///< 2:1 multiplexer, inputs: {a, b, select}; out = select ? b : a
  kDff,    ///< D flip-flop, inputs: {d}; out updates on the cycle boundary
};

[[nodiscard]] std::string_view to_string(GateType type) noexcept;

/// Number of input pins for a gate type.
[[nodiscard]] unsigned input_count(GateType type) noexcept;

/// Combinational evaluation. `inputs` is a bitmask, bit i = input pin i.
/// kDff is sequential and must not be evaluated through here.
[[nodiscard]] bool evaluate(GateType type, std::uint32_t inputs) noexcept;

/// 64-lane combinational evaluation: bit k of each word is an independent
/// simulation lane, so one call evaluates the gate for 64 Monte-Carlo
/// streams at once. `a`/`b`/`s` follow the pin order of `evaluate` (kMux2:
/// {a, b, select}); unused pins are ignored. Lane k of the result equals
/// evaluate(type, ...) over lane k of the operands, bit for bit. kDff is
/// sequential and must not be evaluated through here.
[[nodiscard]] constexpr std::uint64_t evaluate_lanes(
    GateType type, std::uint64_t a, std::uint64_t b = 0,
    std::uint64_t s = 0) noexcept {
  switch (type) {
    case GateType::kBuf: return a;
    case GateType::kInv: return ~a;
    case GateType::kAnd2: return a & b;
    case GateType::kOr2: return a | b;
    case GateType::kNand2: return ~(a & b);
    case GateType::kNor2: return ~(a | b);
    case GateType::kXor2: return a ^ b;
    case GateType::kMux2: return (b & s) | (a & ~s);
    case GateType::kDff: return a;  // state latched by the engine
  }
  return 0;
}

/// Per-cell energy coefficients (joules). Representative 0.18 um / 3.3 V
/// values: switching a minimum inverter output (~4 fF total at the drain)
/// costs ~20 fJ rail to rail; larger cells scale with internal capacitance.
struct GateEnergy {
  /// Energy per output toggle (intrinsic switched capacitance).
  double toggle_j;
  /// Energy added per fan-out load the output drives, per toggle.
  double per_fanout_j;
  /// Clock/internal energy per cycle even without an output toggle
  /// (nonzero only for kDff: the clock buffer always fires).
  double idle_j;
};

/// Library lookup; coefficients can be globally rescaled for other nodes
/// via `scale` (E ~ C * V^2 relative to the 0.18 um reference).
[[nodiscard]] GateEnergy energy_of(GateType type, double scale = 1.0) noexcept;

}  // namespace sfab::gatelevel
