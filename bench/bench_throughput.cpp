// Simulator throughput benchmark: packets/sec and simulated cycles/sec.
//
// Measures how fast the engine itself runs — not what the fabrics deliver —
// on the saturation workload (offered load 1.0, uniform traffic, the
// bench_saturation configuration), across fabrics and port counts. Emits a
// machine-readable BENCH_throughput.json so CI can archive the performance
// trajectory of the hot path over time; the headline number is the
// 32-port crossbar row (the packet-arena PR's ≥3x acceptance metric).
//
// Usage: bench_throughput [--quick] [--reps N] [--out PATH] [--workers N]
//   --quick    small grid + short runs (CI smoke)
//   --reps     timing repetitions per config; best-of is reported (default 3)
//   --out      JSON output path (default BENCH_throughput.json)
//   --workers  N > 1: run the same grid as ONE sharded multi-process sweep
//              (src/dist; the bench re-execs itself as the workers) and
//              record aggregate sweep throughput plus the worker-count
//              metadata in the JSON instead of per-config wall times
// Internal (spawned by --workers): --shard-worker I --shard-dir D
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "dist/coordinator.hpp"
#include "dist/merge.hpp"
#include "dist/shard_plan.hpp"
#include "dist/worker.hpp"
#include "exp/spec.hpp"
#include "obs/host.hpp"
#include "obs/profiler.hpp"
#include "obs/registry.hpp"
#include "sim/lane_sim.hpp"
#include "gatelevel/bitsliced.hpp"
#include "gatelevel/power_sim.hpp"
#include "gatelevel/switch_netlists.hpp"
#include "sim/report.hpp"
#include "sim/simulation.hpp"

namespace {

struct Row {
  sfab::SimConfig config;
  double best_s = 0.0;
  sfab::SimResult result;
};

// Gate-level characterization throughput, two comparisons:
//  1. banyan 2x2 LUT derivation through the scalar reference engine vs
//     the bit-sliced engine at its widest block — the headline
//     "bit-slicing buys ~2 orders of magnitude" number.
//  2. a wide-MUX (N >= 64 inputs) all-active sweep across block widths
//     64/128/256/512 — the multi-word widening payoff over the original
//     64-lane engine, on the harness class the widening was built for.
// "Cycles" are Monte-Carlo lane-cycles, the unit every engine samples
// energy in (each mask's budget rounds up to lanes * steps), so
// cycles/sec is directly comparable and ratios are true speedups.
struct GatelevelWidthRow {
  unsigned block_lanes = 0;
  double wall_s = 0.0;
  double cps = 0.0;
  double speedup_vs_64 = 0.0;
};

struct GatelevelRow {
  unsigned width = 0;
  std::size_t masks = 0;
  unsigned cycles_per_mask = 0;   // measurement budget per mask
  std::uint64_t lane_cycles = 0;  // *simulated* per mask: includes warmup
  unsigned lanes = 0;
  std::string kernel;
  double scalar_s = 0.0;
  double scalar_cps = 0.0;
  double sliced_s = 0.0;
  double sliced_cps = 0.0;
  double speedup = 0.0;
  // wide-MUX per-block-width sweep
  unsigned mux_inputs = 0;
  std::size_t mux_gates = 0;
  unsigned mux_cycles_per_mask = 0;
  std::uint64_t mux_lane_cycles = 0;
  std::vector<GatelevelWidthRow> widths;
  unsigned best_block_lanes = 0;
  double block_speedup = 0.0;  // best width vs the 64-lane block
};

GatelevelRow bench_gatelevel(bool quick, int reps) {
  using namespace sfab::gatelevel;
  constexpr unsigned kMaxLanes = BitslicedNetlist::kMaxLanes;
  constexpr unsigned kWarmup = 64;  // per lane, every engine and width
  GatelevelRow row;
  row.width = 32;
  row.cycles_per_mask = quick ? 8'000 : 64'000;
  row.lanes = kMaxLanes;
  row.kernel = std::string(to_string(resolve_lane_kernel(LaneKernel::kAuto)));
  const auto masks = all_masks(2);
  row.masks = masks.size();
  // Simulated lane-cycles per mask: every engine warms each of the
  // `lanes` streams kWarmup cycles and then measures ceil(budget / lanes)
  // more, so warmup belongs in the throughput numerator (the wall clock
  // pays for it) — and the total is identical across engines, block
  // widths, and pass decompositions, keeping the ratios true speedups.
  const auto simulated_lane_cycles = [&](unsigned budget) {
    const std::uint64_t steps = (budget + kMaxLanes - 1) / kMaxLanes;
    return (steps + kWarmup) * std::uint64_t{kMaxLanes};
  };
  row.lane_cycles = simulated_lane_cycles(row.cycles_per_mask);

  const auto time_engine = [&](CharacterizeEngine engine, double& wall_s) {
    CharacterizationConfig cfg;
    cfg.cycles = row.cycles_per_mask;
    cfg.warmup = kWarmup;
    cfg.seed = 99;
    cfg.engine = engine;
    wall_s = 0.0;
    for (int r = 0; r < reps; ++r) {
      SwitchHarness h = build_banyan_switch(row.width);
      const auto t0 = std::chrono::steady_clock::now();
      const auto results = characterize(h, masks, cfg);
      const auto t1 = std::chrono::steady_clock::now();
      const double s = std::chrono::duration<double>(t1 - t0).count();
      if (r == 0 || s < wall_s) wall_s = s;
      if (results.empty()) std::abort();  // keep the work observable
    }
  };

  time_engine(CharacterizeEngine::kScalar, row.scalar_s);
  time_engine(CharacterizeEngine::kBitsliced, row.sliced_s);

  const double measured =
      static_cast<double>(masks.size()) * static_cast<double>(row.lane_cycles);
  row.scalar_cps = measured / row.scalar_s;
  row.sliced_cps = measured / row.sliced_s;
  row.speedup = row.sliced_cps / row.scalar_cps;

  // Wide-MUX sweep: N-input MUX, all inputs active, one mask; per block
  // width the same 512-lane sample is processed in ceil(512 / width)
  // passes, so wall-clock differences are pure per-sweep amortization +
  // SIMD width (results are bit-identical across rows by construction).
  row.mux_inputs = 64;
  row.mux_cycles_per_mask = quick ? 16'000 : 64'000;
  row.mux_lane_cycles = simulated_lane_cycles(row.mux_cycles_per_mask);
  {
    SwitchHarness probe = build_mux(row.mux_inputs, row.width);
    row.mux_gates = probe.netlist.num_gates();
  }
  for (const unsigned block : {64u, 128u, 256u, 512u}) {
    CharacterizationConfig cfg;
    cfg.cycles = row.mux_cycles_per_mask;
    cfg.warmup = kWarmup;
    cfg.seed = 1234;
    cfg.lanes = kMaxLanes;
    cfg.block_lanes = block;
    GatelevelWidthRow wrow;
    wrow.block_lanes = block;
    for (int r = 0; r < reps; ++r) {
      SwitchHarness mux = build_mux(row.mux_inputs, row.width);
      const auto t0 = std::chrono::steady_clock::now();
      const MaskEnergy e = characterize_all_active(mux, cfg);
      const auto t1 = std::chrono::steady_clock::now();
      const double s = std::chrono::duration<double>(t1 - t0).count();
      if (r == 0 || s < wrow.wall_s) wrow.wall_s = s;
      if (e.energy_per_bit_j <= 0.0) std::abort();
    }
    wrow.cps = static_cast<double>(row.mux_lane_cycles) / wrow.wall_s;
    row.widths.push_back(wrow);
  }
  const double cps64 = row.widths.front().cps;
  for (GatelevelWidthRow& wrow : row.widths) {
    wrow.speedup_vs_64 = wrow.cps / cps64;
    if (row.best_block_lanes == 0 || wrow.cps > row.block_speedup * cps64) {
      row.best_block_lanes = wrow.block_lanes;
      row.block_speedup = wrow.speedup_vs_64;
    }
  }
  return row;
}

// Packet-level replicate lanes: the 32-port VOQ/iSLIP saturation workload
// at 64 replicates, one row per architecture (crossbar, fully-connected,
// Batcher-Banyan, banyan), a scalar per-seed loop vs the bit-sliced lane
// engine (sim/lane_sim.hpp) over the same derive_stream_seed seed list.
// The two engines are bit-identical by construction; the bench checks a
// result fingerprint lane-for-lane before reporting timing, so the speedup
// can never come from computing something different.
struct PacketlanesRow {
  sfab::SimConfig config;
  unsigned replicates = 64;
  double scalar_s = 0.0;
  double laned_s = 0.0;
};

PacketlanesRow bench_packetlanes(const sfab::SimConfig& base,
                                 sfab::Architecture arch, unsigned ports,
                                 int reps) {
  using namespace sfab;
  PacketlanesRow row;
  row.config = base;
  row.config.arch = arch;
  row.config.ports = ports;
  row.config.scheme = RouterScheme::kVoq;

  std::vector<std::uint64_t> seeds(row.replicates);
  for (unsigned k = 0; k < row.replicates; ++k) {
    seeds[k] = derive_stream_seed(row.config.seed, k);
  }

  std::vector<SimResult> scalar_runs(row.replicates);
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    for (unsigned k = 0; k < row.replicates; ++k) {
      SimConfig c = row.config;
      c.seed = seeds[k];
      scalar_runs[k] = run_simulation(c);
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double s = std::chrono::duration<double>(t1 - t0).count();
    if (r == 0 || s < row.scalar_s) row.scalar_s = s;
  }

  std::vector<SimResult> laned_runs;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    laned_runs = run_lane_simulations(row.config, seeds);
    const auto t1 = std::chrono::steady_clock::now();
    const double s = std::chrono::duration<double>(t1 - t0).count();
    if (r == 0 || s < row.laned_s) row.laned_s = s;
  }

  for (unsigned k = 0; k < row.replicates; ++k) {
    if (laned_runs[k].delivered_packets != scalar_runs[k].delivered_packets ||
        laned_runs[k].power_w != scalar_runs[k].power_w ||
        laned_runs[k].mean_packet_latency_cycles !=
            scalar_runs[k].mean_packet_latency_cycles) {
      std::cerr << "packetlanes: lane " << k
                << " diverged from the scalar reference\n";
      std::abort();
    }
  }
  return row;
}

double time_once(const sfab::SimConfig& config, sfab::SimResult& out) {
  const auto t0 = std::chrono::steady_clock::now();
  out = sfab::run_simulation(config);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

double packets_per_sec(const Row& row) {
  return static_cast<double>(row.result.delivered_packets) / row.best_s;
}

double cycles_per_sec(const Row& row) {
  return static_cast<double>(row.config.warmup_cycles +
                             row.config.measure_cycles) /
         row.best_s;
}

/// Populates the phase profiler with one short profiled run AFTER all
/// timed sections (so profiling overhead never lands in a reported
/// number), then writes the shared observability block every schema-v2
/// bench JSON carries: schema version, host metadata, the metrics
/// snapshot, and per-phase totals.
void write_obs_json(std::ostream& json, const sfab::SimConfig& base) {
  using namespace sfab;
  obs::Profiler::global().set_enabled(true);
  SimConfig sample = base;
  sample.arch = Architecture::kCrossbar;
  sample.ports = 16;
  sample.warmup_cycles = 500;
  sample.measure_cycles = 2'000;
  (void)run_simulation(sample);
  obs::Profiler::global().set_enabled(false);

  json << "  \"schema_version\": 2,\n  \"host\": ";
  obs::write_host_json(json);
  json << ",\n  \"metrics\": ";
  obs::Registry::global().write_json(json, 2);
  json << ",\n  \"phases\": ";
  obs::Profiler::global().write_stats_json(json, 2);
  json << ",\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sfab;

  bool quick = false;
  int reps = 3;
  std::string out_path = "BENCH_throughput.json";
  unsigned workers = 1;
  int shard_worker = -1;
  std::string shard_dir;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--reps" && i + 1 < argc) {
      reps = std::stoi(argv[++i]);
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--workers" && i + 1 < argc) {
      workers = static_cast<unsigned>(std::stoul(argv[++i]));
    } else if (arg == "--shard-worker" && i + 1 < argc) {
      shard_worker = std::stoi(argv[++i]);
    } else if (arg == "--shard-dir" && i + 1 < argc) {
      shard_dir = argv[++i];
    } else {
      std::cerr << "usage: bench_throughput [--quick] [--reps N] [--out "
                   "PATH] [--workers N]\n";
      return 2;
    }
  }

  SimConfig base;
  base.offered_load = 1.0;  // saturation: every port always has traffic
  base.warmup_cycles = quick ? 1'000 : 5'000;
  base.measure_cycles = quick ? 4'000 : 40'000;
  base.ingress_queue_packets = 16;
  base.seed = 586;  // the bench_saturation workload

  const std::vector<Architecture> archs =
      quick ? std::vector<Architecture>{Architecture::kCrossbar,
                                        Architecture::kBanyan}
            : std::vector<Architecture>{Architecture::kCrossbar,
                                        Architecture::kFullyConnected,
                                        Architecture::kBatcherBanyan,
                                        Architecture::kBanyan};
  const std::vector<unsigned> port_counts =
      quick ? std::vector<unsigned>{8, 16} : std::vector<unsigned>{8, 16, 32};

  // --- sharded mode: the grid as one multi-process distributed sweep --------
  if (shard_worker >= 0 || workers > 1) {
    SweepSpec spec;
    spec.base = base;
    spec.over_architectures(archs);
    std::vector<unsigned> port_axis = port_counts;
    spec.over_ports(std::move(port_axis));
    const std::size_t shard_count =
        dist::default_shard_count(spec.run_count(), workers);

    if (shard_worker >= 0) {  // spawned child: work the ledger and exit
      dist::WorkerOptions options;
      const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
      options.threads = std::max(1u, hw / std::max(1u, workers));
      options.worker_index = static_cast<unsigned>(shard_worker);
      options.stale_after_s = 10.0;
      dist::run_worker(spec, shard_count, shard_dir, options);
      return 0;
    }

    const bool user_dir = !shard_dir.empty();
    if (!user_dir) {
      shard_dir = (std::filesystem::temp_directory_path() /
                   ("sfab-bench-shards-" + std::to_string(::getpid())))
                      .string();
    }
    const std::string self = argv[0];
    const auto worker_argv = [&](unsigned w) {
      std::vector<std::string> child{self, "--shard-worker",
                                     std::to_string(w), "--shard-dir",
                                     shard_dir, "--workers",
                                     std::to_string(workers)};
      if (quick) child.push_back("--quick");
      return child;
    };

    std::cout << "=== Distributed sweep throughput (" << workers
              << " worker processes, " << shard_count << " shards, "
              << (quick ? "quick" : "full") << " grid) ===\n\n";
    dist::CoordinatorOptions options;
    options.workers = workers;
    const auto t0 = std::chrono::steady_clock::now();
    const dist::CoordinatorReport report =
        dist::ShardCoordinator(shard_dir, worker_argv)
            .run(shard_count, options);
    const dist::MergeOutput merged =
        dist::merge_shards(shard_dir, dist::fingerprint_of(spec));
    const auto t1 = std::chrono::steady_clock::now();
    if (!user_dir) std::filesystem::remove_all(shard_dir);

    const double wall_s = std::chrono::duration<double>(t1 - t0).count();
    const double runs = static_cast<double>(merged.results.size());
    std::cout << merged.results.size() << " runs in "
              << format_fixed(wall_s, 2) << " s ("
              << format_fixed(runs / wall_s, 2) << " runs/s, "
              << report.spawned << " workers spawned)\n";

    std::ofstream json(out_path);
    if (!json.is_open()) {
      std::cerr << "cannot write " << out_path << "\n";
      return 1;
    }
    json << "{\n";
    write_obs_json(json, base);
    json << "  \"bench\": \"throughput\",\n  \"workload\": {\n"
         << "    \"offered_load\": " << base.offered_load << ",\n"
         << "    \"packet_words\": " << base.packet_words << ",\n"
         << "    \"pattern\": \"uniform\",\n    \"scheme\": \"fifo\",\n"
         << "    \"warmup_cycles\": " << base.warmup_cycles << ",\n"
         << "    \"measure_cycles\": " << base.measure_cycles << ",\n"
         << "    \"ingress_queue_packets\": " << base.ingress_queue_packets
         << ",\n    \"seed\": " << base.seed
         << ",\n    \"workers\": " << workers << "\n  },\n"
         << "  \"sharded\": {\"workers\": " << workers
         << ", \"shards\": " << shard_count
         << ", \"workers_spawned\": " << report.spawned
         << ", \"wall_s\": " << wall_s << ", \"runs\": "
         << merged.results.size() << ", \"runs_per_sec\": " << runs / wall_s
         << "},\n  \"results\": [\n";
    for (std::size_t i = 0; i < merged.results.size(); ++i) {
      const RunRecord& rec = merged.results[i];
      json << "    {\"arch\": \"" << to_string(rec.config.arch)
           << "\", \"ports\": " << rec.config.ports
           << ", \"delivered_packets\": " << rec.result.delivered_packets
           << ", \"delivered_words\": " << rec.result.delivered_words
           << ", \"egress_throughput\": " << rec.result.egress_throughput
           << "}" << (i + 1 < merged.results.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::cout << "wrote " << out_path << "\n";
    return 0;
  }

  std::cout << "=== Simulator throughput (saturation workload, "
            << (quick ? "quick" : "full") << " grid) ===\n\n";

  std::vector<Row> rows;
  for (const Architecture arch : archs) {
    for (const unsigned ports : port_counts) {
      Row row;
      row.config = base;
      row.config.arch = arch;
      row.config.ports = ports;
      row.best_s = time_once(row.config, row.result);  // warm + first sample
      for (int r = 1; r < reps; ++r) {
        SimResult result;
        const double s = time_once(row.config, result);
        if (s < row.best_s) {
          row.best_s = s;
          row.result = result;
        }
      }
      rows.push_back(row);
    }
  }

  TextTable t;
  t.set_header({"arch", "ports", "wall_ms", "pkts/sec", "sim cycles/sec",
                "egress thpt"});
  for (const Row& row : rows) {
    t.add_row({std::string(to_string(row.config.arch)),
               std::to_string(row.config.ports),
               format_fixed(row.best_s * 1e3, 1),
               format_fixed(packets_per_sec(row) / 1e6, 3) + "M",
               format_fixed(cycles_per_sec(row) / 1e6, 3) + "M",
               format_percent(row.result.egress_throughput)});
  }
  t.print(std::cout);

  std::cout << "\n=== Gate-level characterization (banyan 2x2 LUT, scalar "
               "vs bit-sliced; kernel: ";
  const GatelevelRow gl = bench_gatelevel(quick, reps);
  std::cout << gl.kernel << ") ===\n\n";
  TextTable gt;
  gt.set_header({"engine", "wall_ms", "charac. cycles/sec", "speedup"});
  gt.add_row({"scalar", format_fixed(gl.scalar_s * 1e3, 1),
              format_fixed(gl.scalar_cps / 1e6, 3) + "M", "1.00"});
  gt.add_row({"bitsliced", format_fixed(gl.sliced_s * 1e3, 1),
              format_fixed(gl.sliced_cps / 1e6, 3) + "M",
              format_fixed(gl.speedup, 2)});
  gt.print(std::cout);

  std::cout << "\n=== Multi-word lane blocks (" << gl.mux_inputs
            << "-input MUX all-active, " << gl.mux_gates << " gates, "
            << gl.lanes << " lanes/mask) ===\n\n";
  TextTable wt;
  wt.set_header({"block lanes", "wall_ms", "charac. cycles/sec",
                 "speedup vs 64"});
  for (const GatelevelWidthRow& wrow : gl.widths) {
    wt.add_row({std::to_string(wrow.block_lanes),
                format_fixed(wrow.wall_s * 1e3, 1),
                format_fixed(wrow.cps / 1e6, 3) + "M",
                format_fixed(wrow.speedup_vs_64, 2)});
  }
  wt.print(std::cout);

  // One scalar-vs-laned row per architecture of the sweep grid. Crossbar
  // first: its laned rate is the headline the regression gate tracks.
  const std::vector<Architecture> lane_archs = {
      Architecture::kCrossbar, Architecture::kFullyConnected,
      Architecture::kBatcherBanyan, Architecture::kBanyan};
  std::vector<PacketlanesRow> pls;
  for (const Architecture arch : lane_archs) {
    pls.push_back(bench_packetlanes(base, arch, 32, reps));
  }
  const auto scalar_rps = [](const PacketlanesRow& row) {
    return static_cast<double>(row.replicates) / row.scalar_s;
  };
  const auto laned_rps = [](const PacketlanesRow& row) {
    return static_cast<double>(row.replicates) / row.laned_s;
  };
  std::cout << "\n=== Packet-level replicate lanes (32x32 VOQ/iSLIP "
               "saturation, "
            << pls.front().replicates << " replicates, kernel: "
            << lane_sim_kernel_name() << ") ===\n\n";
  TextTable pt;
  pt.set_header({"arch", "scalar ms", "laned ms", "scalar reps/s",
                 "laned reps/s", "speedup"});
  for (const PacketlanesRow& row : pls) {
    pt.add_row({std::string(to_string(row.config.arch)),
                format_fixed(row.scalar_s * 1e3, 1),
                format_fixed(row.laned_s * 1e3, 1),
                format_fixed(scalar_rps(row), 2),
                format_fixed(laned_rps(row), 2),
                format_fixed(laned_rps(row) / scalar_rps(row), 2)});
  }
  pt.print(std::cout);

  std::ofstream json(out_path);
  if (!json.is_open()) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  json << "{\n";
  write_obs_json(json, base);
  json << "  \"bench\": \"throughput\",\n  \"workload\": {\n"
       << "    \"offered_load\": " << base.offered_load << ",\n"
       << "    \"packet_words\": " << base.packet_words << ",\n"
       << "    \"pattern\": \"uniform\",\n    \"scheme\": \"fifo\",\n"
       << "    \"warmup_cycles\": " << base.warmup_cycles << ",\n"
       << "    \"measure_cycles\": " << base.measure_cycles << ",\n"
       << "    \"ingress_queue_packets\": " << base.ingress_queue_packets
       << ",\n    \"seed\": " << base.seed << ",\n    \"reps\": " << reps
       << ",\n    \"workers\": 1\n  },\n"
       << "  \"gatelevel\": {\n"
       << "    \"harness\": \"banyan2x2\",\n    \"width\": " << gl.width
       << ",\n    \"masks\": " << gl.masks << ",\n    \"cycles_per_mask\": "
       << gl.cycles_per_mask << ",\n    \"lanes\": " << gl.lanes
       << ",\n    \"kernel\": \"" << gl.kernel << "\""
       << ",\n    \"scalar_wall_s\": " << gl.scalar_s
       << ",\n    \"scalar_cycles_per_sec\": " << gl.scalar_cps
       << ",\n    \"bitsliced_wall_s\": " << gl.sliced_s
       << ",\n    \"bitsliced_cycles_per_sec\": " << gl.sliced_cps
       << ",\n    \"speedup\": " << gl.speedup << ",\n"
       << "    \"mux\": {\n"
       << "      \"inputs\": " << gl.mux_inputs << ",\n      \"width\": "
       << gl.width << ",\n      \"gates\": " << gl.mux_gates
       << ",\n      \"lanes\": " << gl.lanes
       << ",\n      \"cycles_per_mask\": " << gl.mux_cycles_per_mask
       << ",\n      \"widths\": [\n";
  for (std::size_t i = 0; i < gl.widths.size(); ++i) {
    const GatelevelWidthRow& wrow = gl.widths[i];
    json << "        {\"block_lanes\": " << wrow.block_lanes
         << ", \"wall_s\": " << wrow.wall_s
         << ", \"cycles_per_sec\": " << wrow.cps
         << ", \"speedup_vs_64\": " << wrow.speedup_vs_64 << "}"
         << (i + 1 < gl.widths.size() ? "," : "") << "\n";
  }
  json << "      ],\n      \"best_block_lanes\": " << gl.best_block_lanes
       << ",\n      \"block_speedup\": " << gl.block_speedup
       << "\n    }\n  },\n"
       << "  \"packetlanes\": {\n"
       << "    \"arch\": \"" << to_string(pls.front().config.arch)
       << "\",\n    \"ports\": " << pls.front().config.ports
       << ",\n    \"scheme\": \"" << to_string(pls.front().config.scheme)
       << "\",\n    \"replicates\": " << pls.front().replicates
       << ",\n    \"lanes\": " << pls.front().replicates
       << ",\n    \"kernel\": \"" << lane_sim_kernel_name()
       << "\",\n    \"scalar_wall_s\": " << pls.front().scalar_s
       << ",\n    \"scalar_replicates_per_sec\": " << scalar_rps(pls.front())
       << ",\n    \"laned_wall_s\": " << pls.front().laned_s
       << ",\n    \"laned_replicates_per_sec\": " << laned_rps(pls.front())
       << ",\n    \"speedup\": "
       << laned_rps(pls.front()) / scalar_rps(pls.front())
       << ",\n    \"rows\": [\n";
  for (std::size_t i = 0; i < pls.size(); ++i) {
    const PacketlanesRow& row = pls[i];
    json << "      {\"arch\": \"" << to_string(row.config.arch)
         << "\", \"ports\": " << row.config.ports << ", \"scheme\": \""
         << to_string(row.config.scheme)
         << "\", \"replicates\": " << row.replicates
         << ", \"scalar_wall_s\": " << row.scalar_s
         << ", \"scalar_replicates_per_sec\": " << scalar_rps(row)
         << ", \"laned_wall_s\": " << row.laned_s
         << ", \"laned_replicates_per_sec\": " << laned_rps(row)
         << ", \"speedup\": " << laned_rps(row) / scalar_rps(row) << "}"
         << (i + 1 < pls.size() ? "," : "") << "\n";
  }
  json << "    ]\n  },\n"
       << "  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    json << "    {\"arch\": \"" << to_string(row.config.arch)
         << "\", \"ports\": " << row.config.ports
         << ", \"wall_s_best\": " << row.best_s
         << ", \"delivered_packets\": " << row.result.delivered_packets
         << ", \"delivered_words\": " << row.result.delivered_words
         << ", \"packets_per_sec\": " << packets_per_sec(row)
         << ", \"sim_cycles_per_sec\": " << cycles_per_sec(row)
         << ", \"egress_throughput\": " << row.result.egress_throughput
         << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";

  std::cout << "\nwrote " << out_path << " (headline: crossbar @ "
            << port_counts.back() << " ports = "
            << format_fixed(packets_per_sec(rows[port_counts.size() - 1]) /
                                1e6,
                            3)
            << "M pkts/sec)\n";
  return 0;
}
