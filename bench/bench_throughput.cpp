// Simulator throughput benchmark: packets/sec and simulated cycles/sec.
//
// Measures how fast the engine itself runs — not what the fabrics deliver —
// on the saturation workload (offered load 1.0, uniform traffic, the
// bench_saturation configuration), across fabrics and port counts. Emits a
// machine-readable BENCH_throughput.json so CI can archive the performance
// trajectory of the hot path over time; the headline number is the
// 32-port crossbar row (the packet-arena PR's ≥3x acceptance metric).
//
// Usage: bench_throughput [--quick] [--reps N] [--out PATH] [--workers N]
//   --quick    small grid + short runs (CI smoke)
//   --reps     timing repetitions per config; best-of is reported (default 3)
//   --out      JSON output path (default BENCH_throughput.json)
//   --workers  N > 1: run the same grid as ONE sharded multi-process sweep
//              (src/dist; the bench re-execs itself as the workers) and
//              record aggregate sweep throughput plus the worker-count
//              metadata in the JSON instead of per-config wall times
// Internal (spawned by --workers): --shard-worker I --shard-dir D
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dist/coordinator.hpp"
#include "dist/merge.hpp"
#include "dist/shard_plan.hpp"
#include "dist/worker.hpp"
#include "exp/spec.hpp"
#include "gatelevel/bitsliced.hpp"
#include "gatelevel/power_sim.hpp"
#include "gatelevel/switch_netlists.hpp"
#include "sim/report.hpp"
#include "sim/simulation.hpp"

namespace {

struct Row {
  sfab::SimConfig config;
  double best_s = 0.0;
  sfab::SimResult result;
};

// Gate-level characterization throughput: the same 2-port banyan-switch
// LUT derivation through the scalar reference engine and the 64-lane
// bit-sliced engine. "Cycles" are Monte-Carlo characterization cycles
// (lane-cycles for the bit-sliced engine), the unit both engines sample
// energy in, so cycles/sec is directly comparable and the ratio is the
// bit-slicing speedup.
struct GatelevelRow {
  unsigned width = 0;
  std::size_t masks = 0;
  unsigned cycles_per_mask = 0;
  double scalar_s = 0.0;
  double scalar_cps = 0.0;
  double sliced_s = 0.0;
  double sliced_cps = 0.0;
  double speedup = 0.0;
};

GatelevelRow bench_gatelevel(bool quick, int reps) {
  using namespace sfab::gatelevel;
  GatelevelRow row;
  row.width = 32;
  row.cycles_per_mask = quick ? 8'000 : 64'000;
  const auto masks = all_masks(2);
  row.masks = masks.size();

  const auto time_engine = [&](CharacterizeEngine engine, double& wall_s) {
    CharacterizationConfig cfg;
    cfg.cycles = row.cycles_per_mask;
    cfg.warmup = 64;
    cfg.seed = 99;
    cfg.engine = engine;
    wall_s = 0.0;
    for (int r = 0; r < reps; ++r) {
      SwitchHarness h = build_banyan_switch(row.width);
      const auto t0 = std::chrono::steady_clock::now();
      const auto results = characterize(h, masks, cfg);
      const auto t1 = std::chrono::steady_clock::now();
      const double s = std::chrono::duration<double>(t1 - t0).count();
      if (r == 0 || s < wall_s) wall_s = s;
      if (results.empty()) std::abort();  // keep the work observable
    }
  };

  time_engine(CharacterizeEngine::kScalar, row.scalar_s);
  time_engine(CharacterizeEngine::kBitsliced, row.sliced_s);

  const double scalar_cycles =
      static_cast<double>(masks.size()) * row.cycles_per_mask;
  // Lane-cycles actually simulated: characterize() rounds each mask up to
  // whole 64-lane steps.
  constexpr unsigned kLanes = BitslicedNetlist::kLanes;
  const double sliced_cycles =
      static_cast<double>(masks.size()) *
      ((row.cycles_per_mask + kLanes - 1) / kLanes) * kLanes;
  row.scalar_cps = scalar_cycles / row.scalar_s;
  row.sliced_cps = sliced_cycles / row.sliced_s;
  row.speedup = row.sliced_cps / row.scalar_cps;
  return row;
}

double time_once(const sfab::SimConfig& config, sfab::SimResult& out) {
  const auto t0 = std::chrono::steady_clock::now();
  out = sfab::run_simulation(config);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

double packets_per_sec(const Row& row) {
  return static_cast<double>(row.result.delivered_packets) / row.best_s;
}

double cycles_per_sec(const Row& row) {
  return static_cast<double>(row.config.warmup_cycles +
                             row.config.measure_cycles) /
         row.best_s;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sfab;

  bool quick = false;
  int reps = 3;
  std::string out_path = "BENCH_throughput.json";
  unsigned workers = 1;
  int shard_worker = -1;
  std::string shard_dir;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--reps" && i + 1 < argc) {
      reps = std::stoi(argv[++i]);
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--workers" && i + 1 < argc) {
      workers = static_cast<unsigned>(std::stoul(argv[++i]));
    } else if (arg == "--shard-worker" && i + 1 < argc) {
      shard_worker = std::stoi(argv[++i]);
    } else if (arg == "--shard-dir" && i + 1 < argc) {
      shard_dir = argv[++i];
    } else {
      std::cerr << "usage: bench_throughput [--quick] [--reps N] [--out "
                   "PATH] [--workers N]\n";
      return 2;
    }
  }

  SimConfig base;
  base.offered_load = 1.0;  // saturation: every port always has traffic
  base.warmup_cycles = quick ? 1'000 : 5'000;
  base.measure_cycles = quick ? 4'000 : 40'000;
  base.ingress_queue_packets = 16;
  base.seed = 586;  // the bench_saturation workload

  const std::vector<Architecture> archs =
      quick ? std::vector<Architecture>{Architecture::kCrossbar,
                                        Architecture::kBanyan}
            : std::vector<Architecture>{Architecture::kCrossbar,
                                        Architecture::kFullyConnected,
                                        Architecture::kBatcherBanyan,
                                        Architecture::kBanyan};
  const std::vector<unsigned> port_counts =
      quick ? std::vector<unsigned>{8, 16} : std::vector<unsigned>{8, 16, 32};

  // --- sharded mode: the grid as one multi-process distributed sweep --------
  if (shard_worker >= 0 || workers > 1) {
    SweepSpec spec;
    spec.base = base;
    spec.over_architectures(archs);
    std::vector<unsigned> port_axis = port_counts;
    spec.over_ports(std::move(port_axis));
    const std::size_t shard_count =
        dist::default_shard_count(spec.run_count(), workers);

    if (shard_worker >= 0) {  // spawned child: work the ledger and exit
      dist::WorkerOptions options;
      const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
      options.threads = std::max(1u, hw / std::max(1u, workers));
      options.worker_index = static_cast<unsigned>(shard_worker);
      options.stale_after_s = 10.0;
      dist::run_worker(spec, shard_count, shard_dir, options);
      return 0;
    }

    const bool user_dir = !shard_dir.empty();
    if (!user_dir) {
      shard_dir = (std::filesystem::temp_directory_path() /
                   ("sfab-bench-shards-" + std::to_string(::getpid())))
                      .string();
    }
    const std::string self = argv[0];
    const auto worker_argv = [&](unsigned w) {
      std::vector<std::string> child{self, "--shard-worker",
                                     std::to_string(w), "--shard-dir",
                                     shard_dir, "--workers",
                                     std::to_string(workers)};
      if (quick) child.push_back("--quick");
      return child;
    };

    std::cout << "=== Distributed sweep throughput (" << workers
              << " worker processes, " << shard_count << " shards, "
              << (quick ? "quick" : "full") << " grid) ===\n\n";
    dist::CoordinatorOptions options;
    options.workers = workers;
    options.log = &std::cerr;
    const auto t0 = std::chrono::steady_clock::now();
    const dist::CoordinatorReport report =
        dist::ShardCoordinator(shard_dir, worker_argv)
            .run(shard_count, options);
    const dist::MergeOutput merged =
        dist::merge_shards(shard_dir, dist::fingerprint_of(spec));
    const auto t1 = std::chrono::steady_clock::now();
    if (!user_dir) std::filesystem::remove_all(shard_dir);

    const double wall_s = std::chrono::duration<double>(t1 - t0).count();
    const double runs = static_cast<double>(merged.results.size());
    std::cout << merged.results.size() << " runs in "
              << format_fixed(wall_s, 2) << " s ("
              << format_fixed(runs / wall_s, 2) << " runs/s, "
              << report.spawned << " workers spawned)\n";

    std::ofstream json(out_path);
    if (!json.is_open()) {
      std::cerr << "cannot write " << out_path << "\n";
      return 1;
    }
    json << "{\n  \"bench\": \"throughput\",\n  \"workload\": {\n"
         << "    \"offered_load\": " << base.offered_load << ",\n"
         << "    \"packet_words\": " << base.packet_words << ",\n"
         << "    \"pattern\": \"uniform\",\n    \"scheme\": \"fifo\",\n"
         << "    \"warmup_cycles\": " << base.warmup_cycles << ",\n"
         << "    \"measure_cycles\": " << base.measure_cycles << ",\n"
         << "    \"ingress_queue_packets\": " << base.ingress_queue_packets
         << ",\n    \"seed\": " << base.seed
         << ",\n    \"workers\": " << workers << "\n  },\n"
         << "  \"sharded\": {\"workers\": " << workers
         << ", \"shards\": " << shard_count
         << ", \"workers_spawned\": " << report.spawned
         << ", \"wall_s\": " << wall_s << ", \"runs\": "
         << merged.results.size() << ", \"runs_per_sec\": " << runs / wall_s
         << "},\n  \"results\": [\n";
    for (std::size_t i = 0; i < merged.results.size(); ++i) {
      const RunRecord& rec = merged.results[i];
      json << "    {\"arch\": \"" << to_string(rec.config.arch)
           << "\", \"ports\": " << rec.config.ports
           << ", \"delivered_packets\": " << rec.result.delivered_packets
           << ", \"delivered_words\": " << rec.result.delivered_words
           << ", \"egress_throughput\": " << rec.result.egress_throughput
           << "}" << (i + 1 < merged.results.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::cout << "wrote " << out_path << "\n";
    return 0;
  }

  std::cout << "=== Simulator throughput (saturation workload, "
            << (quick ? "quick" : "full") << " grid) ===\n\n";

  std::vector<Row> rows;
  for (const Architecture arch : archs) {
    for (const unsigned ports : port_counts) {
      Row row;
      row.config = base;
      row.config.arch = arch;
      row.config.ports = ports;
      row.best_s = time_once(row.config, row.result);  // warm + first sample
      for (int r = 1; r < reps; ++r) {
        SimResult result;
        const double s = time_once(row.config, result);
        if (s < row.best_s) {
          row.best_s = s;
          row.result = result;
        }
      }
      rows.push_back(row);
    }
  }

  TextTable t;
  t.set_header({"arch", "ports", "wall_ms", "pkts/sec", "sim cycles/sec",
                "egress thpt"});
  for (const Row& row : rows) {
    t.add_row({std::string(to_string(row.config.arch)),
               std::to_string(row.config.ports),
               format_fixed(row.best_s * 1e3, 1),
               format_fixed(packets_per_sec(row) / 1e6, 3) + "M",
               format_fixed(cycles_per_sec(row) / 1e6, 3) + "M",
               format_percent(row.result.egress_throughput)});
  }
  t.print(std::cout);

  std::cout << "\n=== Gate-level characterization (banyan 2x2 LUT, scalar "
               "vs 64-lane bit-sliced) ===\n\n";
  const GatelevelRow gl = bench_gatelevel(quick, reps);
  TextTable gt;
  gt.set_header({"engine", "wall_ms", "charac. cycles/sec", "speedup"});
  gt.add_row({"scalar", format_fixed(gl.scalar_s * 1e3, 1),
              format_fixed(gl.scalar_cps / 1e6, 3) + "M", "1.00"});
  gt.add_row({"bitsliced", format_fixed(gl.sliced_s * 1e3, 1),
              format_fixed(gl.sliced_cps / 1e6, 3) + "M",
              format_fixed(gl.speedup, 2)});
  gt.print(std::cout);

  std::ofstream json(out_path);
  if (!json.is_open()) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  json << "{\n  \"bench\": \"throughput\",\n  \"workload\": {\n"
       << "    \"offered_load\": " << base.offered_load << ",\n"
       << "    \"packet_words\": " << base.packet_words << ",\n"
       << "    \"pattern\": \"uniform\",\n    \"scheme\": \"fifo\",\n"
       << "    \"warmup_cycles\": " << base.warmup_cycles << ",\n"
       << "    \"measure_cycles\": " << base.measure_cycles << ",\n"
       << "    \"ingress_queue_packets\": " << base.ingress_queue_packets
       << ",\n    \"seed\": " << base.seed << ",\n    \"reps\": " << reps
       << ",\n    \"workers\": 1\n  },\n"
       << "  \"gatelevel\": {\n"
       << "    \"harness\": \"banyan2x2\",\n    \"width\": " << gl.width
       << ",\n    \"masks\": " << gl.masks << ",\n    \"cycles_per_mask\": "
       << gl.cycles_per_mask << ",\n    \"scalar_wall_s\": " << gl.scalar_s
       << ",\n    \"scalar_cycles_per_sec\": " << gl.scalar_cps
       << ",\n    \"bitsliced_wall_s\": " << gl.sliced_s
       << ",\n    \"bitsliced_cycles_per_sec\": " << gl.sliced_cps
       << ",\n    \"speedup\": " << gl.speedup << "\n  },\n"
       << "  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    json << "    {\"arch\": \"" << to_string(row.config.arch)
         << "\", \"ports\": " << row.config.ports
         << ", \"wall_s_best\": " << row.best_s
         << ", \"delivered_packets\": " << row.result.delivered_packets
         << ", \"delivered_words\": " << row.result.delivered_words
         << ", \"packets_per_sec\": " << packets_per_sec(row)
         << ", \"sim_cycles_per_sec\": " << cycles_per_sec(row)
         << ", \"egress_throughput\": " << row.result.egress_throughput
         << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";

  std::cout << "\nwrote " << out_path << " (headline: crossbar @ "
            << port_counts.back() << " ports = "
            << format_fixed(packets_per_sec(rows[port_counts.size() - 1]) /
                                1e6,
                            3)
            << "M pkts/sec)\n";
  return 0;
}
