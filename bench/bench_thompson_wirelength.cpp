// Reproduces the paper's section 3.4 wire-length analysis: the closed-form
// Thompson embeddings behind Eqs. 3-6, cross-checked against the generic
// grid embedder routing the real topologies.
#include <iostream>

#include "common/units.hpp"
#include "power/analytical.hpp"
#include "sim/report.hpp"
#include "thompson/embedder.hpp"
#include "thompson/fabric_embeddings.hpp"

int main() {
  using namespace sfab;

  std::cout << "=== Thompson wire lengths (grids; 1 grid = 32 um at "
               "0.18 um / 32-bit bus) ===\n\n";

  TextTable t;
  t.set_header({"ports", "crossbar (8N)", "fully-conn (N^2/2)",
                "banyan worst", "batcher-banyan worst"});
  for (const unsigned n : {4u, 8u, 16u, 32u}) {
    t.add_row({std::to_string(n),
               format_fixed(AnalyticalModel::crossbar_wire_grids(n), 0),
               format_fixed(AnalyticalModel::fully_connected_wire_grids(n), 0),
               format_fixed(AnalyticalModel::banyan_wire_grids(n), 0),
               format_fixed(AnalyticalModel::batcher_banyan_wire_grids(n),
                            0)});
  }
  t.print(std::cout);

  std::cout << "\nper-stage Banyan link lengths (stage i crossing spans "
               "2^i rows):\n";
  TextTable s;
  s.set_header({"stage", "straight (grids)", "crossing (grids)"});
  const thompson::BanyanEmbedding banyan{32};
  for (unsigned stage = 0; stage < banyan.stages(); ++stage) {
    s.add_row({std::to_string(stage),
               format_fixed(banyan.straight_link_grids(), 0),
               format_fixed(banyan.cross_link_grids(stage), 0)});
  }
  s.print(std::cout);

  std::cout << "\ngeneric grid embedder vs closed form (edge-disjoint BFS "
               "routing of the real topology):\n";
  TextTable g;
  g.set_header({"topology", "edges", "total wire (grids)", "max edge",
                "grid used"});
  struct Case {
    const char* name;
    thompson::SourceGraph graph;
  };
  Case cases[] = {{"crossbar 4x4", thompson::crossbar_graph(4)},
                  {"banyan 8x8", thompson::banyan_graph(8)},
                  {"fully-conn 4x4", thompson::fully_connected_graph(4)}};
  for (auto& c : cases) {
    thompson::ThompsonEmbedder embedder(96, 96);
    const auto result = embedder.embed(c.graph, thompson::auto_place(c.graph, 3));
    if (!result.success) {
      g.add_row({c.name, std::to_string(c.graph.num_edges()), "unroutable",
                 "-", "-"});
      continue;
    }
    g.add_row({c.name, std::to_string(c.graph.num_edges()),
               std::to_string(result.total_wire_length()),
               std::to_string(result.max_wire_length()),
               std::to_string(result.width) + "x" +
                   std::to_string(result.height)});
  }
  g.print(std::cout);

  std::cout << "\n(the generic embedder's auto-placement is not the paper's "
               "hand layout, so absolute\nlengths differ; it validates "
               "routability and the relative growth across fabrics.)\n";
  return 0;
}
