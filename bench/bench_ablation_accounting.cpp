// Ablation: modeling-choice sensitivity for the Banyan buffer penalty.
//
// Three knobs the paper leaves implicit:
//   1. charge WRITE+READ per buffered word vs a single access (Eq. 5
//      charges E_B once per contended stage),
//   2. the buffer energy scale (Table 2 datasheet values vs a CACTI-lite
//      on-chip macro ~100x cheaper),
//   3. payload toggle activity.
// Each moves the load point where the 32x32 Banyan stops being the
// cheapest architecture — the headline of section 6 observation 1. The
// simulated knobs (1, 3) run as one-axis sweeps through the engine.
#include <iostream>

#include "common/units.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "power/analytical.hpp"
#include "power/buffer_energy.hpp"
#include "sim/report.hpp"

namespace {

/// Analytical crossover: smallest load where Banyan's average bit energy
/// exceeds the cheapest dedicated-path fabric's.
double analytical_crossover(const sfab::AnalyticalModel& model,
                            double buffer_bit_energy_j, double accesses) {
  using namespace sfab;
  for (double load = 0.01; load <= 1.0; load += 0.01) {
    AnalyticalModel::AverageParams p;
    p.toggle_activity = 0.5;
    const double rival =
        std::min(model.crossbar_avg_bit_energy(32, p),
                 std::min(model.fully_connected_avg_bit_energy(32, p),
                          model.batcher_banyan_avg_bit_energy(32, p)));
    const double contention =
        AnalyticalModel::uniform_stage_contention_prob(load);
    const double banyan =
        model.banyan_avg_bit_energy(
            32, AnalyticalModel::AverageParams{0.5, 0.0, true}) +
        5.0 * contention * accesses * buffer_bit_energy_j;
    if (banyan > rival) return load;
  }
  return 1.0;
}

sfab::SimConfig banyan32() {
  sfab::SimConfig c;
  c.arch = sfab::Architecture::kBanyan;
  c.ports = 32;
  c.warmup_cycles = 3'000;
  c.measure_cycles = 20'000;
  return c;
}

}  // namespace

int main() {
  using namespace sfab;
  using units::pJ;

  std::cout << "=== Ablation: buffer accounting choices (Banyan 32x32) "
               "===\n\n";

  // 1. simulated: write+read vs single access.
  SweepSpec accounting;
  accounting.base = banyan32();
  accounting.base.offered_load = 0.5;
  accounting.base.seed = 77;
  accounting.over_charge_read_and_write({true, false});
  print_records(
      std::cout, run_sweep(accounting),
      {{"accounting",
        [](const RunRecord& r) {
          return std::string(r.config.charge_buffer_read_and_write
                                 ? "write + read (default)"
                                 : "single access");
        }},
       {"power @50%",
        [](const RunRecord& r) { return format_power(r.result.power_w); }},
       {"buffer power @50%", [](const RunRecord& r) {
          return format_power(r.result.buffer_power_w);
        }}});

  // 2. analytical crossover under both buffer-energy scales.
  const AnalyticalModel model;
  const double datasheet = SramBufferModel::for_banyan(32).bit_energy_j();
  const double cacti =
      CactiLiteModel{SramBufferModel::for_banyan(32).capacity_bits()}
          .access_energy_per_bit_j();
  std::cout << "\nAnalytical 32x32 crossover load (Banyan stops being "
               "cheapest):\n";
  TextTable t2;
  t2.set_header({"buffer model", "E_B (pJ/bit)", "accesses",
                 "crossover load"});
  t2.add_row({"Table 2 datasheet", format_fixed(datasheet / pJ, 1), "2",
              format_percent(analytical_crossover(model, datasheet, 2.0))});
  t2.add_row({"Table 2 datasheet", format_fixed(datasheet / pJ, 1), "1",
              format_percent(analytical_crossover(model, datasheet, 1.0))});
  t2.add_row({"CACTI-lite macro", format_fixed(cacti / pJ, 3), "2",
              format_percent(analytical_crossover(model, cacti, 2.0))});
  t2.print(std::cout);

  // 3. payload toggle activity (simulated).
  std::cout << "\nToggle-activity sensitivity (Banyan 32x32, 30% load):\n";
  SweepSpec toggle;
  toggle.base = banyan32();
  toggle.base.offered_load = 0.3;
  toggle.base.seed = 78;
  toggle.over_payloads(
      {PayloadKind::kZero, PayloadKind::kRandom, PayloadKind::kAlternating});
  print_records(
      std::cout, run_sweep(toggle),
      {{"payload",
        [](const RunRecord& r) {
          return std::string(to_string(r.config.payload));
        }},
       {"power",
        [](const RunRecord& r) { return format_power(r.result.power_w); }},
       {"wire power", [](const RunRecord& r) {
          return format_power(r.result.wire_power_w);
        }}});
  return 0;
}
