// Ablation: Banyan node-buffer size vs throughput, latency and power.
//
// The paper fixes 4 Kbit per node switch, citing [10][11] that "buffer
// size of a few packets will actually achieve ideal throughput". This
// bench sweeps the queue depth (one engine axis) to show where that
// plateau starts and what each extra word of buffering costs in SRAM
// access energy.
#include <iostream>

#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "sim/report.hpp"

int main() {
  using namespace sfab;

  std::cout << "=== Ablation: Banyan 16x16 node-buffer depth at 50% offered "
               "load ===\n(paper default: 128 words = 4 Kbit/switch)\n\n";

  SweepSpec spec;
  spec.base.arch = Architecture::kBanyan;
  spec.base.ports = 16;
  spec.base.offered_load = 0.5;
  spec.base.warmup_cycles = 3'000;
  spec.base.measure_cycles = 25'000;
  spec.base.seed = 4242;
  spec.over_buffer_words({1, 2, 4, 8, 16, 32, 64, 128, 256});

  print_records(
      std::cout, run_sweep(spec),
      {{"buffer (words)",
        [](const RunRecord& r) {
          return std::to_string(r.config.buffer_words_per_switch);
        }},
       {"throughput",
        [](const RunRecord& r) {
          return format_percent(r.result.egress_throughput);
        }},
       {"mean latency",
        [](const RunRecord& r) {
          return format_fixed(r.result.mean_packet_latency_cycles, 1) +
                 " cyc";
        }},
       {"power",
        [](const RunRecord& r) { return format_power(r.result.power_w); }},
       {"buffer power",
        [](const RunRecord& r) {
          return format_power(r.result.buffer_power_w);
        }},
       {"words buffered",
        [](const RunRecord& r) {
          return std::to_string(r.result.words_buffered);
        }},
       {"stalls", [](const RunRecord& r) {
          return std::to_string(r.result.stall_cycles);
        }}});

  std::cout << "\nExpected shape: throughput plateaus after a few packets "
               "of buffering (paper's\ncited result); beyond that, extra "
               "capacity only raises the shared-SRAM access cost.\n";
  return 0;
}
