// Ablation: Banyan node-buffer size vs throughput, latency and power.
//
// The paper fixes 4 Kbit per node switch, citing [10][11] that "buffer
// size of a few packets will actually achieve ideal throughput". This
// bench sweeps the queue depth to show where that plateau starts and what
// each extra word of buffering costs in SRAM access energy.
#include <iostream>

#include "fabric/banyan.hpp"
#include "sim/report.hpp"
#include "sim/simulation.hpp"

int main() {
  using namespace sfab;

  std::cout << "=== Ablation: Banyan 16x16 node-buffer depth at 50% offered "
               "load ===\n(paper default: 128 words = 4 Kbit/switch)\n\n";

  TextTable t;
  t.set_header({"buffer (words)", "throughput", "mean latency", "power",
                "buffer power", "words buffered", "stalls"});
  for (const unsigned words : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
    SimConfig c;
    c.arch = Architecture::kBanyan;
    c.ports = 16;
    c.offered_load = 0.5;
    c.buffer_words_per_switch = words;
    c.warmup_cycles = 3'000;
    c.measure_cycles = 25'000;
    c.seed = 4242;
    const SimResult r = run_simulation(c);
    t.add_row({std::to_string(words), format_percent(r.egress_throughput),
               format_fixed(r.mean_packet_latency_cycles, 1) + " cyc",
               format_power(r.power_w), format_power(r.buffer_power_w),
               std::to_string(r.words_buffered),
               std::to_string(r.stall_cycles)});
  }
  t.print(std::cout);

  std::cout << "\nExpected shape: throughput plateaus after a few packets "
               "of buffering (paper's\ncited result); beyond that, extra "
               "capacity only raises the shared-SRAM access cost.\n";
  return 0;
}
