// Ablation: traffic pattern sensitivity at 16x16, 40% offered load.
//
// The paper evaluates uniform random destinations only; this bench adds
// bit-reversal permutation (adversarial for banyan-class networks),
// hotspot and bursty arrivals, showing how pattern choice moves both
// throughput and the power split.
#include <iostream>

#include "sim/report.hpp"
#include "sim/simulation.hpp"

int main() {
  using namespace sfab;

  std::cout << "=== Ablation: traffic patterns, 16x16, 40% offered load "
               "===\n\n";

  for (const auto pattern :
       {TrafficPatternKind::kUniform, TrafficPatternKind::kBitReversal,
        TrafficPatternKind::kHotspot, TrafficPatternKind::kBursty}) {
    std::cout << "--- " << to_string(pattern) << " ---\n";
    TextTable t;
    t.set_header({"architecture", "throughput", "power", "buffer power",
                  "mean latency", "drops"});
    for (const Architecture arch : all_architectures()) {
      SimConfig c;
      c.arch = arch;
      c.ports = 16;
      c.offered_load = 0.4;
      c.pattern = pattern;
      c.hotspot_fraction = 0.3;
      c.mean_burst_cycles = 300.0;
      c.warmup_cycles = 3'000;
      c.measure_cycles = 25'000;
      c.seed = 99;
      const SimResult r = run_simulation(c);
      t.add_row({std::string(to_string(arch)),
                 format_percent(r.egress_throughput), format_power(r.power_w),
                 format_power(r.buffer_power_w),
                 format_fixed(r.mean_packet_latency_cycles, 1) + " cyc",
                 std::to_string(r.input_queue_drops)});
    }
    t.print(std::cout);
    std::cout << '\n';
  }

  std::cout << "Notes: permutation flows remove destination contention "
               "(throughput -> offered);\nhotspot caps aggregate throughput "
               "at the hot egress; bursty arrivals raise latency\nand "
               "Banyan buffer power at equal mean load.\n";
  return 0;
}
