// Ablation: traffic pattern sensitivity at 16x16, 40% offered load.
//
// The paper evaluates uniform random destinations only; this bench adds
// bit-reversal permutation (adversarial for banyan-class networks),
// hotspot and bursty arrivals, showing how pattern choice moves both
// throughput and the power split. One pattern x architecture sweep.
#include <iostream>

#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "sim/report.hpp"

int main() {
  using namespace sfab;

  std::cout << "=== Ablation: traffic patterns, 16x16, 40% offered load "
               "===\n\n";

  SweepSpec spec;
  spec.base.ports = 16;
  spec.base.offered_load = 0.4;
  spec.base.hotspot_fraction = 0.3;
  spec.base.mean_burst_cycles = 300.0;
  spec.base.warmup_cycles = 3'000;
  spec.base.measure_cycles = 25'000;
  spec.base.seed = 99;
  spec.over_architectures(all_architectures())
      .over_patterns(
          {TrafficPatternKind::kUniform, TrafficPatternKind::kBitReversal,
           TrafficPatternKind::kHotspot, TrafficPatternKind::kBursty});
  const ResultSet results = run_sweep(spec);

  for (const TrafficPatternKind pattern : spec.patterns) {
    std::cout << "--- " << to_string(pattern) << " ---\n";
    print_records(
        std::cout,
        results.select([pattern](const RunRecord& r) {
          return r.config.pattern == pattern;
        }),
        {{"architecture",
          [](const RunRecord& r) {
            return std::string(to_string(r.config.arch));
          }},
         {"throughput",
          [](const RunRecord& r) {
            return format_percent(r.result.egress_throughput);
          }},
         {"power",
          [](const RunRecord& r) { return format_power(r.result.power_w); }},
         {"buffer power",
          [](const RunRecord& r) {
            return format_power(r.result.buffer_power_w);
          }},
         {"mean latency",
          [](const RunRecord& r) {
            return format_fixed(r.result.mean_packet_latency_cycles, 1) +
                   " cyc";
          }},
         {"drops", [](const RunRecord& r) {
            return std::to_string(r.result.input_queue_drops);
          }}});
    std::cout << '\n';
  }

  std::cout << "Notes: permutation flows remove destination contention "
               "(throughput -> offered);\nhotspot caps aggregate throughput "
               "at the hot egress; bursty arrivals raise latency\nand "
               "Banyan buffer power at equal mean load.\n";
  return 0;
}
