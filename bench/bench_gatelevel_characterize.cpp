// Demonstrates how Table 1 would be produced: random-vector power
// characterization of synthesized gate netlists — our in-repo substitute
// for the paper's Synopsys Power Compiler flow.
#include <iostream>

#include "common/units.hpp"
#include "gatelevel/bitsliced.hpp"
#include "gatelevel/power_sim.hpp"
#include "gatelevel/switch_netlists.hpp"
#include "power/switch_energy.hpp"
#include "sim/report.hpp"

int main() {
  using namespace sfab;
  using namespace sfab::gatelevel;
  using units::fJ;

  // Multi-word bit-sliced engine (the default: 512 Monte-Carlo lanes per
  // sweep, SIMD kernel picked at runtime): 256k Monte-Carlo lane-cycles
  // per mask cost what 4k scalar cycles used to, so the LUTs here are ~8x
  // tighter than the pre-bitslicing run of this bench at a fraction of
  // the wall clock — and the wide-MUX table below now extends to N = 256
  // inputs, which the 64-lane engine had to truncate at N = 16 for cost.
  const CharacterizationConfig cfg{256'000, 128, 0x7ab1e1};
  const auto paper = SwitchEnergyTables::paper_defaults();

  std::cout << "=== Gate-level LUT derivation (substitute for Power "
               "Compiler, 0.18 um / 3.3 V cells; bit-sliced x"
            << BitslicedNetlist::kMaxLanes << " lanes ("
            << to_string(resolve_lane_kernel(LaneKernel::kAuto))
            << " kernel), " << cfg.cycles << " cycles/mask) ===\n\n";

  // 2x2 switches: full 4-vector LUTs vs paper Table 1.
  TextTable t;
  t.set_header({"switch", "vector", "derived (fJ/bit)", "paper (fJ/bit)",
                "ratio"});
  {
    SwitchHarness banyan = build_banyan_switch(32);
    const auto lut = characterize_two_port_lut(banyan, cfg);
    const double paper_vals[4] = {
        0.0, paper.banyan2x2.energy_per_bit(0b01u) / fJ,
        paper.banyan2x2.energy_per_bit(0b10u) / fJ,
        paper.banyan2x2.energy_per_bit(0b11u) / fJ};
    const char* vec[4] = {"[0,0]", "[0,1]", "[1,0]", "[1,1]"};
    for (int m = 0; m < 4; ++m) {
      const double derived = lut[m] / fJ;
      t.add_row({"banyan 2x2 (" + std::to_string(banyan.netlist.num_gates()) +
                     " gates)",
                 vec[m], format_fixed(derived, 0),
                 format_fixed(paper_vals[m], 0),
                 paper_vals[m] > 0.0
                     ? format_fixed(derived / paper_vals[m], 2)
                     : "-"});
    }
  }
  {
    SwitchHarness sorter = build_sorter_switch(32);
    const auto lut = characterize_two_port_lut(sorter, cfg);
    const double paper_vals[4] = {
        0.0, paper.sorter2x2.energy_per_bit(0b01u) / fJ,
        paper.sorter2x2.energy_per_bit(0b10u) / fJ,
        paper.sorter2x2.energy_per_bit(0b11u) / fJ};
    const char* vec[4] = {"[0,0]", "[0,1]", "[1,0]", "[1,1]"};
    for (int m = 0; m < 4; ++m) {
      const double derived = lut[m] / fJ;
      t.add_row({"batcher 2x2 (" +
                     std::to_string(sorter.netlist.num_gates()) + " gates)",
                 vec[m], format_fixed(derived, 0),
                 format_fixed(paper_vals[m], 0),
                 paper_vals[m] > 0.0
                     ? format_fixed(derived / paper_vals[m], 2)
                     : "-"});
    }
  }
  {
    SwitchHarness cross = build_crosspoint(32);
    const auto results = characterize(cross, {0u, 1u}, cfg);
    const char* vec[2] = {"[0]", "[1]"};
    const double paper_vals[2] = {0.0,
                                  paper.crosspoint.energy_per_bit(1u) / fJ};
    for (int m = 0; m < 2; ++m) {
      const double derived = results[m].energy_per_bit_j / fJ;
      t.add_row({"crosspoint (" +
                     std::to_string(cross.netlist.num_gates()) + " gates)",
                 vec[m], format_fixed(derived, 0),
                 format_fixed(paper_vals[m], 0),
                 paper_vals[m] > 0.0
                     ? format_fixed(derived / paper_vals[m], 2)
                     : "-"});
    }
  }
  t.print(std::cout);

  std::cout << "\nN-input MUX (all inputs driven, random selects; N > 32 "
               "uses the all-active drive plan — a uint32_t occupancy mask "
               "can't express those states):\n";
  TextTable m;
  m.set_header({"N", "gates", "derived (fJ/bit)", "paper (fJ/bit)", "ratio"});
  for (const unsigned n : {4u, 8u, 16u, 64u, 256u}) {
    SwitchHarness mux = build_mux(n, 32);
    const MaskEnergy result = characterize_all_active(mux, cfg);
    const double derived = result.energy_per_bit_j / fJ;
    const double expected = paper.mux_energy_per_bit(n) / fJ;
    m.add_row({std::to_string(n),
               std::to_string(mux.netlist.num_gates()),
               format_fixed(derived, 0), format_fixed(expected, 0),
               format_fixed(derived / expected, 2)});
  }
  m.print(std::cout);

  std::cout << "\n(shape checks: [1,1] > [0,1] but < 2x; sorter > banyan "
               "switch; MUX grows with N;\nabsolute ratios reflect our "
               "synthetic netlists vs the paper's real circuits.)\n";
  return 0;
}
