// Reproduces paper Table 1: "Bit Energy Under Different Input Vectors".
//
// The shipped LUTs are the paper's Power Compiler characterization; this
// bench prints them in the paper's layout so EXPERIMENTS.md can diff
// paper-vs-framework directly. (bench_gatelevel_characterize shows how the
// same table is *derived* from gate netlists.)
#include <iostream>

#include "common/units.hpp"
#include "power/switch_energy.hpp"
#include "sim/report.hpp"

int main() {
  using namespace sfab;
  using units::fJ;

  const auto tables = SwitchEnergyTables::paper_defaults();
  const auto in_fj = [](double joules) {
    return format_fixed(joules / fJ, 0);
  };

  std::cout << "=== Table 1: switch-fabric bit energy under input vectors "
               "(10^-15 joule) ===\n\n";

  TextTable two_port;
  two_port.set_header({"architecture", "[0,0]", "[0,1]", "[1,0]", "[1,1]"});
  two_port.add_row({"crossbar 1x1   [0]/[1]",
                    in_fj(tables.crosspoint.energy_per_bit(0u)),
                    in_fj(tables.crosspoint.energy_per_bit(1u)), "-", "-"});
  two_port.add_row({"banyan 2x2",
                    in_fj(tables.banyan2x2.energy_per_bit(false, false)),
                    in_fj(tables.banyan2x2.energy_per_bit(false, true)),
                    in_fj(tables.banyan2x2.energy_per_bit(true, false)),
                    in_fj(tables.banyan2x2.energy_per_bit(true, true))});
  two_port.add_row({"batcher 2x2",
                    in_fj(tables.sorter2x2.energy_per_bit(false, false)),
                    in_fj(tables.sorter2x2.energy_per_bit(false, true)),
                    in_fj(tables.sorter2x2.energy_per_bit(true, false)),
                    in_fj(tables.sorter2x2.energy_per_bit(true, true))});
  two_port.print(std::cout);

  std::cout << "\nN-input MUX bit energy (per-N, near-constant across "
               "vectors):\n";
  TextTable mux;
  mux.set_header({"N", "bit energy (fJ)"});
  for (const unsigned n : {4u, 8u, 16u, 32u}) {
    mux.add_row({std::to_string(n), in_fj(tables.mux_energy_per_bit(n))});
  }
  mux.print(std::cout);

  std::cout << "\ninterpolated sizes (framework extension beyond the "
               "paper's calibration):\n";
  TextTable extra;
  extra.set_header({"N", "bit energy (fJ)"});
  for (const unsigned n : {6u, 12u, 24u, 64u}) {
    extra.add_row({std::to_string(n), in_fj(tables.mux_energy_per_bit(n))});
  }
  extra.print(std::cout);
  return 0;
}
