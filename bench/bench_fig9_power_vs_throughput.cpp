// Reproduces paper Fig. 9: "Power Consumption Under Different Traffic
// Throughput" — power vs measured egress throughput (10%..50%) for the
// four architectures at 4x4, 8x8, 16x16 and 32x32 ports, plus the 32x32
// Banyan crossover scan behind section 6 observation 1.
//
// Both grids run through the experiment engine (exp/): one SweepSpec per
// figure, executed on every core, selected back out by axis value.
#include <iostream>
#include <vector>

#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "sim/report.hpp"

namespace {

sfab::SimConfig fig9_base() {
  sfab::SimConfig c;
  c.warmup_cycles = 3'000;
  c.measure_cycles = 25'000;
  c.seed = 2002;
  return c;
}

}  // namespace

int main() {
  using namespace sfab;

  std::cout << "=== Fig. 9: fabric power vs egress throughput (uniform "
               "traffic, 133 MHz, 32-bit bus) ===\n";
  std::cout << "(input-buffered; theoretical max throughput 58.6%)\n";

  SweepSpec spec;
  spec.base = fig9_base();
  spec.over_architectures(all_architectures())
      .over_ports({4, 8, 16, 32})
      .over_loads({0.10, 0.20, 0.30, 0.40, 0.50});
  const ResultSet results = run_sweep(spec);

  const std::vector<Column> columns{
      {"architecture",
       [](const RunRecord& r) {
         return std::string(to_string(r.config.arch));
       }},
      {"offered",
       [](const RunRecord& r) {
         return format_percent(r.config.offered_load);
       }},
      {"throughput",
       [](const RunRecord& r) {
         return format_percent(r.result.egress_throughput);
       }},
      {"power",
       [](const RunRecord& r) { return format_power(r.result.power_w); }},
      {"switch",
       [](const RunRecord& r) {
         return format_power(r.result.switch_power_w);
       }},
      {"buffer",
       [](const RunRecord& r) {
         return format_power(r.result.buffer_power_w);
       }},
      {"wire", [](const RunRecord& r) {
         return format_power(r.result.wire_power_w);
       }}};

  for (const unsigned ports : spec.ports) {
    std::cout << "\n--- " << ports << "x" << ports << " ---\n";
    print_records(std::cout,
                  results.select([ports](const RunRecord& r) {
                    return r.config.ports == ports;
                  }),
                  columns);
  }

  // Section 6, observation 1: where does the 32x32 Banyan stop being the
  // cheapest fabric? (paper: below ~35% throughput it is the cheapest)
  std::cout << "\n--- 32x32 Banyan crossover scan (observation 1) ---\n";
  std::vector<double> scan_loads;
  for (int k = 1; k <= 11; ++k) scan_loads.push_back(0.05 * k);

  SweepSpec scan;
  scan.base = fig9_base();
  scan.base.ports = 32;
  scan.over_architectures(all_architectures()).over_loads(scan_loads);
  const ResultSet scanned = run_sweep(scan);

  TextTable x;
  x.set_header({"throughput", "banyan", "cheapest other", "banyan wins"});
  for (const double load : scan_loads) {
    const double banyan =
        scanned
            .at([load](const RunRecord& r) {
              return r.config.offered_load == load &&
                     r.config.arch == Architecture::kBanyan;
            })
            .result.power_w;
    double best_other = 1e30;
    Architecture best_arch = Architecture::kCrossbar;
    for (const RunRecord* rec : scanned.select([load](const RunRecord& r) {
           return r.config.offered_load == load &&
                  r.config.arch != Architecture::kBanyan;
         })) {
      if (rec->result.power_w < best_other) {
        best_other = rec->result.power_w;
        best_arch = rec->config.arch;
      }
    }
    x.add_row({format_percent(load), format_power(banyan),
               format_power(best_other) + " (" +
                   std::string(to_string(best_arch)) + ")",
               banyan < best_other ? "yes" : "no"});
  }
  x.print(std::cout);
  return 0;
}
