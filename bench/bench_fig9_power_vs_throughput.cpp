// Reproduces paper Fig. 9: "Power Consumption Under Different Traffic
// Throughput" — power vs measured egress throughput (10%..50%) for the
// four architectures at 4x4, 8x8, 16x16 and 32x32 ports, plus the 32x32
// Banyan crossover scan behind section 6 observation 1.
#include <iostream>
#include <vector>

#include "sim/report.hpp"
#include "sim/simulation.hpp"

namespace {

sfab::SimConfig base_config(sfab::Architecture arch, unsigned ports,
                            double load) {
  sfab::SimConfig c;
  c.arch = arch;
  c.ports = ports;
  c.offered_load = load;
  c.warmup_cycles = 3'000;
  c.measure_cycles = 25'000;
  c.seed = 2002;
  return c;
}

}  // namespace

int main() {
  using namespace sfab;
  const std::vector<double> loads{0.10, 0.20, 0.30, 0.40, 0.50};

  std::cout << "=== Fig. 9: fabric power vs egress throughput (uniform "
               "traffic, 133 MHz, 32-bit bus) ===\n";
  std::cout << "(input-buffered; theoretical max throughput 58.6%)\n";

  for (const unsigned ports : {4u, 8u, 16u, 32u}) {
    std::cout << "\n--- " << ports << "x" << ports << " ---\n";
    TextTable t;
    t.set_header({"architecture", "offered", "throughput", "power",
                  "switch", "buffer", "wire"});
    for (const Architecture arch : all_architectures()) {
      for (const double load : loads) {
        const SimResult r = run_simulation(base_config(arch, ports, load));
        t.add_row({std::string(to_string(arch)),
                   format_percent(r.offered_load),
                   format_percent(r.egress_throughput),
                   format_power(r.power_w), format_power(r.switch_power_w),
                   format_power(r.buffer_power_w),
                   format_power(r.wire_power_w)});
      }
    }
    t.print(std::cout);
  }

  // Section 6, observation 1: where does the 32x32 Banyan stop being the
  // cheapest fabric? (paper: below ~35% throughput it is the cheapest)
  std::cout << "\n--- 32x32 Banyan crossover scan (observation 1) ---\n";
  TextTable x;
  x.set_header({"throughput", "banyan", "cheapest other", "banyan wins"});
  for (double load = 0.05; load <= 0.55; load += 0.05) {
    const double banyan =
        run_simulation(base_config(Architecture::kBanyan, 32, load)).power_w;
    double best_other = 1e30;
    Architecture best_arch = Architecture::kCrossbar;
    for (const Architecture arch :
         {Architecture::kCrossbar, Architecture::kFullyConnected,
          Architecture::kBatcherBanyan}) {
      const double p = run_simulation(base_config(arch, 32, load)).power_w;
      if (p < best_other) {
        best_other = p;
        best_arch = arch;
      }
    }
    x.add_row({format_percent(load), format_power(banyan),
               format_power(best_other) + " (" +
                   std::string(to_string(best_arch)) + ")",
               banyan < best_other ? "yes" : "no"});
  }
  x.print(std::cout);
  return 0;
}
