// Extension bench: what the paper's 58.6% HOL ceiling costs, and what the
// fabrics do when a VOQ/iSLIP scheduler actually loads them.
//
// Left table: saturation throughput, FIFO (paper's scheme) vs VOQ+iSLIP —
// one scheme x ports sweep, now that the queueing scheme is a SimConfig
// axis. Right table: fabric power at the operating points only VOQ can
// reach.
#include <iostream>

#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "sim/report.hpp"

int main() {
  using namespace sfab;

  std::cout << "=== Extension: VOQ + iSLIP vs the paper's FIFO input "
               "queueing ===\n\n";

  std::cout << "saturation throughput at offered load 100% (uniform, "
               "16-word packets):\n";
  SweepSpec saturation;
  saturation.base.arch = Architecture::kCrossbar;
  saturation.base.offered_load = 1.0;
  // Equal queue capacity for both schemes (the hand-rolled predecessor
  // gave FIFO 32 and VOQ 128 packets; matching them isolates the
  // scheduling effect).
  saturation.base.ingress_queue_packets = 128;
  saturation.base.warmup_cycles = 5'000;
  saturation.base.measure_cycles = 30'000;
  saturation.base.seed = 7;
  saturation.over_schemes({RouterScheme::kFifo, RouterScheme::kVoq})
      .over_ports({4, 8, 16, 32});
  const ResultSet sat = run_sweep(saturation);

  TextTable sat_table;
  sat_table.set_header({"ports", "FIFO (paper)", "VOQ+iSLIP"});
  for (const unsigned ports : saturation.ports) {
    std::vector<std::string> row{std::to_string(ports) + "x" +
                                 std::to_string(ports)};
    for (const RouterScheme scheme : saturation.schemes) {
      const RunRecord& rec = sat.at([ports, scheme](const RunRecord& r) {
        return r.config.ports == ports && r.config.scheme == scheme;
      });
      row.push_back(format_percent(rec.result.egress_throughput));
    }
    sat_table.add_row(std::move(row));
  }
  sat_table.print(std::cout);

  std::cout << "\nfabric power at high load, 16x16 (FIFO cannot reach "
               "these throughputs):\n";
  SweepSpec high_load;
  high_load.base.ports = 16;
  high_load.base.scheme = RouterScheme::kVoq;
  high_load.base.ingress_queue_packets = 128;
  high_load.base.warmup_cycles = 5'000;
  high_load.base.measure_cycles = 30'000;
  high_load.base.seed = 7;
  high_load.over_architectures(all_architectures())
      .over_loads({0.6, 0.8, 0.95});
  print_records(
      std::cout, run_sweep(high_load),
      {{"architecture",
        [](const RunRecord& r) {
          return std::string(to_string(r.config.arch));
        }},
       {"offered",
        [](const RunRecord& r) {
          return format_percent(r.config.offered_load);
        }},
       {"VOQ throughput",
        [](const RunRecord& r) {
          return format_percent(r.result.egress_throughput);
        }},
       {"VOQ power", [](const RunRecord& r) {
          return format_power(r.result.power_w);
        }}});

  std::cout << "\nreading: removing HOL blocking exposes the fabrics to "
               "loads the paper never\nmeasured — the Banyan's buffer "
               "penalty explodes, the dedicated-path fabrics just\nscale "
               "linearly to the line rate.\n";
  return 0;
}
