// Extension bench: what the paper's 58.6% HOL ceiling costs, and what the
// fabrics do when a VOQ/iSLIP scheduler actually loads them.
//
// Left table: saturation throughput, FIFO (paper's scheme) vs VOQ+iSLIP.
// Right table: fabric power at the operating points only VOQ can reach.
#include <iostream>

#include "fabric/factory.hpp"
#include "router/router.hpp"
#include "router/voq_router.hpp"
#include "sim/report.hpp"
#include "traffic/generator.hpp"

namespace {

using namespace sfab;

struct Measured {
  double throughput;
  double power_w;
};

Measured run_fifo(Architecture arch, unsigned ports, double load) {
  FabricConfig fc;
  fc.ports = ports;
  Router router(make_fabric(arch, fc),
                TrafficGenerator::uniform_bernoulli(ports, load, 16, 7),
                RouterConfig{32});
  router.run(5'000);  // warm-up
  router.fabric().reset_energy();
  router.egress().reset_counters();
  router.run(30'000);
  return {router.egress().throughput(30'000),
          router.fabric().ledger().total() /
              (30'000 * router.fabric().config().tech.cycle_time_s())};
}

Measured run_voq(Architecture arch, unsigned ports, double load) {
  FabricConfig fc;
  fc.ports = ports;
  VoqRouter router(make_fabric(arch, fc),
                   TrafficGenerator::uniform_bernoulli(ports, load, 16, 7),
                   VoqRouterConfig{128, 0});
  router.run(5'000);
  router.fabric().reset_energy();
  router.egress().reset_counters();
  router.run(30'000);
  return {router.egress().throughput(30'000),
          router.fabric().ledger().total() /
              (30'000 * router.fabric().config().tech.cycle_time_s())};
}

}  // namespace

int main() {
  using namespace sfab;

  std::cout << "=== Extension: VOQ + iSLIP vs the paper's FIFO input "
               "queueing ===\n\n";

  std::cout << "saturation throughput at offered load 100% (uniform, "
               "16-word packets):\n";
  TextTable sat;
  sat.set_header({"ports", "FIFO (paper)", "VOQ+iSLIP"});
  for (const unsigned ports : {4u, 8u, 16u, 32u}) {
    sat.add_row({std::to_string(ports) + "x" + std::to_string(ports),
                 format_percent(
                     run_fifo(Architecture::kCrossbar, ports, 1.0).throughput),
                 format_percent(
                     run_voq(Architecture::kCrossbar, ports, 1.0).throughput)});
  }
  sat.print(std::cout);

  std::cout << "\nfabric power at high load, 16x16 (FIFO cannot reach "
               "these throughputs):\n";
  TextTable p;
  p.set_header({"architecture", "offered", "VOQ throughput", "VOQ power"});
  for (const Architecture arch : all_architectures()) {
    for (const double load : {0.6, 0.8, 0.95}) {
      const Measured m = run_voq(arch, 16, load);
      p.add_row({std::string(to_string(arch)), format_percent(load),
                 format_percent(m.throughput), format_power(m.power_w)});
    }
  }
  p.print(std::cout);

  std::cout << "\nreading: removing HOL blocking exposes the fabrics to "
               "loads the paper never\nmeasured — the Banyan's buffer "
               "penalty explodes, the dedicated-path fabrics just\nscale "
               "linearly to the line rate.\n";
  return 0;
}
