// Reproduces paper Table 2: "Buffer Bit Energy of NxN Banyan Network",
// and contrasts the datasheet calibration with the physically-derived
// CACTI-lite decomposition.
#include <iostream>

#include "common/units.hpp"
#include "power/buffer_energy.hpp"
#include "sim/report.hpp"

int main() {
  using namespace sfab;
  using units::pJ;

  std::cout << "=== Table 2: buffer bit energy of NxN Banyan (4 Kbit per "
               "node switch) ===\n\n";

  TextTable t;
  t.set_header({"in/out size", "switches", "shared SRAM", "bit energy",
                "paper (pJ)"});
  const double paper[] = {140.0, 140.0, 154.0, 222.0};
  int row = 0;
  for (const unsigned ports : {4u, 8u, 16u, 32u}) {
    const SramBufferModel m = SramBufferModel::for_banyan(ports);
    t.add_row({std::to_string(ports) + "x" + std::to_string(ports),
               std::to_string(SramBufferModel::banyan_switch_count(ports)),
               format_fixed(m.capacity_bits() / 1024.0, 0) + "K",
               format_fixed(m.bit_energy_j() / pJ, 1) + " pJ",
               format_fixed(paper[row++], 1)});
  }
  t.print(std::cout);

  std::cout << "\n=== Ablation: datasheet calibration vs CACTI-lite "
               "physical decomposition ===\n";
  std::cout << "(the paper's datasheet-derived numbers are ~2 orders above "
               "an on-chip SRAM macro;\n bench_ablation_accounting shows "
               "what that scale does to the Banyan conclusions)\n\n";
  TextTable c;
  c.set_header({"capacity", "datasheet (pJ/bit)", "cacti-lite (pJ/bit)",
                "rows x cols"});
  for (const double kbits : {16.0, 48.0, 128.0, 320.0}) {
    const SramBufferModel datasheet{kbits * 1024.0};
    const CactiLiteModel physical{kbits * 1024.0};
    c.add_row({format_fixed(kbits, 0) + "K",
               format_fixed(datasheet.access_energy_per_bit_j() / pJ, 1),
               format_fixed(physical.access_energy_per_bit_j() / pJ, 3),
               std::to_string(physical.rows()) + " x " +
                   std::to_string(physical.cols())});
  }
  c.print(std::cout);

  std::cout << "\nDRAM-buffer extension (Eq. 1's E_ref term, amortized "
               "over access rate):\n";
  TextTable d;
  d.set_header({"accesses/s", "E_access (pJ/bit)", "E_ref (pJ/bit)",
                "E_B (pJ/bit)"});
  const DramBufferModel dram{320.0 * 1024.0};
  for (const double rate : {1e4, 1e5, 1e6, 1e7}) {
    d.add_row({format_fixed(rate, 0),
               format_fixed(dram.access_energy_per_bit_j() / pJ, 1),
               format_fixed(dram.refresh_energy_per_bit_j(rate) / pJ, 3),
               format_fixed(dram.bit_energy_j(rate) / pJ, 1)});
  }
  d.print(std::cout);
  return 0;
}
