// Simulator performance microbenchmarks (google-benchmark): cycles/second
// per architecture — the practical replacement-for-Simulink claim — plus
// the experiment engine's thread-pool scaling on a fixed 16-run grid.
#include <benchmark/benchmark.h>

#include "exp/runner.hpp"
#include "fabric/factory.hpp"
#include "router/router.hpp"
#include "traffic/generator.hpp"

namespace {

using namespace sfab;

void run_router_cycles(benchmark::State& state, Architecture arch) {
  const auto ports = static_cast<unsigned>(state.range(0));
  FabricConfig fc;
  fc.ports = ports;
  Router router(make_fabric(arch, fc),
                TrafficGenerator::uniform_bernoulli(ports, 0.4, 16, 7));
  for (auto _ : state) {
    router.step();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["cycles/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}

void BM_Crossbar(benchmark::State& state) {
  run_router_cycles(state, Architecture::kCrossbar);
}
void BM_FullyConnected(benchmark::State& state) {
  run_router_cycles(state, Architecture::kFullyConnected);
}
void BM_Banyan(benchmark::State& state) {
  run_router_cycles(state, Architecture::kBanyan);
}
void BM_BatcherBanyan(benchmark::State& state) {
  run_router_cycles(state, Architecture::kBatcherBanyan);
}

// Thread-pool scaling of the sweep engine: same 16-run grid at 1..N
// threads; items/s is runs/s. Results are bit-identical across the args by
// construction, so this measures pure execution scaling.
void BM_SweepRunner(benchmark::State& state) {
  const auto threads = static_cast<unsigned>(state.range(0));
  SweepSpec spec;
  spec.base.ports = 8;
  spec.base.warmup_cycles = 200;
  spec.base.measure_cycles = 1'000;
  spec.over_architectures({Architecture::kCrossbar, Architecture::kBanyan})
      .over_loads({0.2, 0.4})
      .with_replicates(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_sweep(spec, threads));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * spec.run_count()));
}

}  // namespace

BENCHMARK(BM_Crossbar)->Arg(8)->Arg(32);
BENCHMARK(BM_FullyConnected)->Arg(8)->Arg(32);
BENCHMARK(BM_Banyan)->Arg(8)->Arg(32);
BENCHMARK(BM_BatcherBanyan)->Arg(8)->Arg(32);
BENCHMARK(BM_SweepRunner)->Arg(1)->Arg(2)->Arg(4);

BENCHMARK_MAIN();
