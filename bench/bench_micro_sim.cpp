// Simulator performance microbenchmarks (google-benchmark): cycles/second
// per architecture — the practical replacement-for-Simulink claim.
#include <benchmark/benchmark.h>

#include "fabric/factory.hpp"
#include "router/router.hpp"
#include "traffic/generator.hpp"

namespace {

using namespace sfab;

void run_router_cycles(benchmark::State& state, Architecture arch) {
  const auto ports = static_cast<unsigned>(state.range(0));
  FabricConfig fc;
  fc.ports = ports;
  Router router(make_fabric(arch, fc),
                TrafficGenerator::uniform_bernoulli(ports, 0.4, 16, 7));
  for (auto _ : state) {
    router.step();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["cycles/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}

void BM_Crossbar(benchmark::State& state) {
  run_router_cycles(state, Architecture::kCrossbar);
}
void BM_FullyConnected(benchmark::State& state) {
  run_router_cycles(state, Architecture::kFullyConnected);
}
void BM_Banyan(benchmark::State& state) {
  run_router_cycles(state, Architecture::kBanyan);
}
void BM_BatcherBanyan(benchmark::State& state) {
  run_router_cycles(state, Architecture::kBatcherBanyan);
}

}  // namespace

BENCHMARK(BM_Crossbar)->Arg(8)->Arg(32);
BENCHMARK(BM_FullyConnected)->Arg(8)->Arg(32);
BENCHMARK(BM_Banyan)->Arg(8)->Arg(32);
BENCHMARK(BM_BatcherBanyan)->Arg(8)->Arg(32);

BENCHMARK_MAIN();
