// Reproduces paper Fig. 10: "Power Consumption Under Different Number of
// Ports" — all four architectures at 50% offered load, N = 4..32, with the
// fully-connected vs Batcher-Banyan gap the paper calls out (37% at 4x4
// narrowing to 20% at 32x32 on their testbed). Each point is replicated
// over three seeds and reported with a Student-t 95% confidence interval.
#include <iostream>

#include "sim/replicate.hpp"
#include "sim/report.hpp"

namespace {

std::string with_ci(const sfab::Statistic& s) {
  return sfab::format_power(s.mean) + " ±" +
         sfab::format_fixed(s.ci95_half * 1e3, 1);
}

}  // namespace

int main() {
  using namespace sfab;

  std::cout << "=== Fig. 10: fabric power vs number of ports at 50% "
               "offered load ===\n(mean of 3 seeds, ±95% CI in mW)\n\n";

  TextTable t;
  t.set_header({"ports", "crossbar", "fully-conn", "banyan",
                "batcher-banyan", "FC-vs-BB gap"});
  for (const unsigned ports : {4u, 8u, 16u, 32u}) {
    double mean_power[4] = {};
    std::vector<std::string> row{std::to_string(ports) + "x" +
                                 std::to_string(ports)};
    int k = 0;
    for (const Architecture arch : all_architectures()) {
      SimConfig c;
      c.arch = arch;
      c.ports = ports;
      c.offered_load = 0.5;
      c.warmup_cycles = 3'000;
      c.measure_cycles = 20'000;
      c.seed = 2002;
      const ReplicatedResult r = replicate(c, 3);
      mean_power[k++] = r.power_w.mean;
      row.push_back(with_ci(r.power_w));
    }
    const double gap = (mean_power[3] - mean_power[1]) / mean_power[3];
    row.push_back(format_percent(gap));
    t.add_row(std::move(row));
  }
  t.print(std::cout);

  std::cout << "\npaper's gap trajectory: 37% (4x4) -> 20% (32x32); the "
               "reproduced shape is the monotone narrowing.\n";
  return 0;
}
