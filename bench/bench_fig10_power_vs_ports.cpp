// Reproduces paper Fig. 10: "Power Consumption Under Different Number of
// Ports" — all four architectures at 50% offered load, N = 4..32, with the
// fully-connected vs Batcher-Banyan gap the paper calls out (37% at 4x4
// narrowing to 20% at 32x32 on their testbed). Each point is replicated
// over three seeds (the engine's paired derived seeds) and reported with a
// Student-t 95% confidence interval.
#include <iostream>

#include "exp/runner.hpp"
#include "sim/report.hpp"

namespace {

std::string with_ci(const sfab::Statistic& s) {
  return sfab::format_power(s.mean) + " ±" +
         sfab::format_fixed(s.ci95_half * 1e3, 1);
}

}  // namespace

int main() {
  using namespace sfab;

  std::cout << "=== Fig. 10: fabric power vs number of ports at 50% "
               "offered load ===\n(mean of 3 seeds, ±95% CI in mW)\n\n";

  SweepSpec spec;
  spec.base.offered_load = 0.5;
  spec.base.warmup_cycles = 3'000;
  spec.base.measure_cycles = 20'000;
  spec.base.seed = 2002;
  spec.over_architectures(all_architectures())
      .over_ports({4, 8, 16, 32})
      .with_replicates(3);
  const ResultSet results = run_sweep(spec);

  TextTable t;
  t.set_header({"ports", "crossbar", "fully-conn", "banyan",
                "batcher-banyan", "FC-vs-BB gap"});
  for (const unsigned ports : spec.ports) {
    double mean_power[4] = {};
    std::vector<std::string> row{std::to_string(ports) + "x" +
                                 std::to_string(ports)};
    int k = 0;
    for (const Architecture arch : spec.architectures) {
      const Statistic power = results.stat(
          [ports, arch](const RunRecord& r) {
            return r.config.ports == ports && r.config.arch == arch;
          },
          metrics::power_w);
      mean_power[k++] = power.mean;
      row.push_back(with_ci(power));
    }
    const double gap = (mean_power[3] - mean_power[1]) / mean_power[3];
    row.push_back(format_percent(gap));
    t.add_row(std::move(row));
  }
  t.print(std::cout);

  std::cout << "\npaper's gap trajectory: 37% (4x4) -> 20% (32x32); the "
               "reproduced shape is the monotone narrowing.\n";
  return 0;
}
