// Ablation: technology scaling. The paper's case study is 0.18 um / 3.3 V;
// this bench rescales the energy models to neighboring nodes (E ~ C * V^2)
// and checks that the architectural ordering — the paper's actual
// contribution — survives the process change. The simulated comparison is
// one technology x architecture sweep through the engine.
#include <iostream>

#include "common/units.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "power/analytical.hpp"
#include "sim/report.hpp"

int main() {
  using namespace sfab;
  using units::fJ;

  std::cout << "=== Ablation: technology node scaling ===\n\n";

  const std::vector<std::string> nodes{"0.25um", "0.18um", "0.13um"};

  SweepSpec spec;
  spec.base.ports = 16;
  spec.base.offered_load = 0.4;
  spec.base.warmup_cycles = 2'000;
  spec.base.measure_cycles = 15'000;
  spec.base.seed = 13;
  spec.over_architectures(all_architectures()).over_tech_nodes(nodes);
  const ResultSet results = run_sweep(spec);

  for (const std::string& node : nodes) {
    const TechnologyParams tech = TechnologyParams::preset(node);
    const auto switches = SwitchEnergyTables::paper_defaults().scaled_to(tech);

    std::cout << "--- " << node << "  (Vdd " << tech.vdd_v << " V, clock "
              << tech.clock_hz / 1e6 << " MHz, E_T "
              << format_fixed(tech.grid_wire_bit_energy_j() / fJ, 1)
              << " fJ/grid) ---\n";

    // Analytical worst-case bit energies.
    const AnalyticalModel model{tech, switches};
    TextTable a;
    a.set_header({"ports", "crossbar", "fully-conn", "banyan (q=0)",
                  "batcher-banyan"});
    for (const unsigned ports : {4u, 16u, 32u}) {
      a.add_row({std::to_string(ports),
                 format_energy(model.crossbar_bit_energy(ports)),
                 format_energy(model.fully_connected_bit_energy(ports)),
                 format_energy(model.banyan_bit_energy_no_contention(ports)),
                 format_energy(model.batcher_banyan_bit_energy(ports))});
    }
    a.print(std::cout);

    // Simulated power at 16x16, 40% load, selected out of the sweep.
    print_records(
        std::cout,
        results.select([&tech](const RunRecord& r) {
          return r.config.tech.feature_um == tech.feature_um;
        }),
        {{"architecture",
          [](const RunRecord& r) {
            return std::string(to_string(r.config.arch));
          }},
         {"power @16x16, 40% load", [](const RunRecord& r) {
            return format_power(r.result.power_w);
          }}});
    std::cout << '\n';
  }

  std::cout << "Expected: absolute power shifts with C*V^2 and clock, the "
               "architecture ordering does not.\n";
  return 0;
}
