// Verifies the paper's section 5.2 claim: with input buffering, the
// theoretical maximum egress throughput is 2 - sqrt(2) = 58.6% (and "in
// reality, the 58.6% throughput is not achievable"). We overdrive every
// fabric size at offered load 1.0 through the experiment engine and report
// the measured saturation.
#include <iostream>

#include "exp/runner.hpp"
#include "sim/report.hpp"

int main() {
  using namespace sfab;

  std::cout << "=== Input-queued saturation throughput (offered load 100%, "
               "uniform traffic) ===\n";
  std::cout << "HOL-blocking limit for large N: 2 - sqrt(2) = 58.6%\n\n";

  SweepSpec spec;
  spec.base.offered_load = 1.0;
  spec.base.warmup_cycles = 5'000;
  spec.base.measure_cycles = 40'000;
  spec.base.ingress_queue_packets = 16;
  spec.base.seed = 586;
  // Presentation order: dedicated-path fabrics first, Banyan last.
  spec.over_architectures({Architecture::kCrossbar,
                           Architecture::kFullyConnected,
                           Architecture::kBatcherBanyan,
                           Architecture::kBanyan})
      .over_ports({4, 8, 16, 32});
  const ResultSet results = run_sweep(spec);

  TextTable t;
  t.set_header({"ports", "crossbar", "fully-conn", "batcher-banyan",
                "banyan"});
  for (const unsigned ports : spec.ports) {
    std::vector<std::string> row{std::to_string(ports) + "x" +
                                 std::to_string(ports)};
    for (const Architecture arch : spec.architectures) {
      const RunRecord& rec = results.at([ports, arch](const RunRecord& r) {
        return r.config.ports == ports && r.config.arch == arch;
      });
      row.push_back(format_percent(rec.result.egress_throughput));
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);

  std::cout << "\nExpected: dedicated-path fabrics approach 58.6% from "
               "above as N grows\n(finite-N input queueing saturates "
               "higher: 75% at N=2, 65.5% at N=4, ...);\nthe Banyan "
               "saturates lower because internal blocking adds its own "
               "back-pressure.\n";
  return 0;
}
