// Verifies the paper's section 5.2 claim: with input buffering, the
// theoretical maximum egress throughput is 2 - sqrt(2) = 58.6% (and "in
// reality, the 58.6% throughput is not achievable"). We overdrive every
// fabric size at offered load 1.0 and report the measured saturation.
#include <cmath>
#include <iostream>

#include "sim/report.hpp"
#include "sim/simulation.hpp"

int main() {
  using namespace sfab;

  std::cout << "=== Input-queued saturation throughput (offered load 100%, "
               "uniform traffic) ===\n";
  std::cout << "HOL-blocking limit for large N: 2 - sqrt(2) = 58.6%\n\n";

  TextTable t;
  t.set_header({"ports", "crossbar", "fully-conn", "batcher-banyan",
                "banyan"});
  for (const unsigned ports : {4u, 8u, 16u, 32u}) {
    std::vector<std::string> row{std::to_string(ports) + "x" +
                                 std::to_string(ports)};
    for (const Architecture arch :
         {Architecture::kCrossbar, Architecture::kFullyConnected,
          Architecture::kBatcherBanyan, Architecture::kBanyan}) {
      SimConfig c;
      c.arch = arch;
      c.ports = ports;
      c.offered_load = 1.0;
      c.warmup_cycles = 5'000;
      c.measure_cycles = 40'000;
      c.ingress_queue_packets = 16;
      c.seed = 586;
      row.push_back(format_percent(run_simulation(c).egress_throughput));
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);

  std::cout << "\nExpected: dedicated-path fabrics approach 58.6% from "
               "above as N grows\n(finite-N input queueing saturates "
               "higher: 75% at N=2, 65.5% at N=4, ...);\nthe Banyan "
               "saturates lower because internal blocking adds its own "
               "back-pressure.\n";
  return 0;
}
