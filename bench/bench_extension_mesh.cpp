// Extension bench: the 2-D mesh NoC against the paper's four fabrics.
//
// The paper's bit-energy method applied to the topology its keywords
// anticipate. Meshes trade the crossbar's global wires for short hops plus
// per-hop router energy and queueing — the comparison shows where each
// wins as port count grows. One architecture x ports x load sweep.
#include <iostream>

#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "sim/report.hpp"

int main() {
  using namespace sfab;

  std::cout << "=== Extension: 2-D mesh NoC vs the paper's fabrics "
               "(uniform traffic) ===\n\n";

  SweepSpec spec;
  spec.base.warmup_cycles = 3'000;
  spec.base.measure_cycles = 20'000;
  spec.base.seed = 64;
  // Banyan-class fabrics need power-of-two ports; mesh needs a square.
  // 16 and 64 satisfy both.
  spec.over_architectures(extended_architectures())
      .over_ports({16, 64})
      .over_loads({0.2, 0.4});
  const ResultSet results = run_sweep(spec);

  for (const unsigned ports : spec.ports) {
    std::cout << "--- " << ports << " ports ---\n";
    print_records(
        std::cout,
        results.select([ports](const RunRecord& r) {
          return r.config.ports == ports;
        }),
        {{"architecture",
          [](const RunRecord& r) {
            return std::string(to_string(r.config.arch));
          }},
         {"offered",
          [](const RunRecord& r) {
            return format_percent(r.config.offered_load);
          }},
         {"throughput",
          [](const RunRecord& r) {
            return format_percent(r.result.egress_throughput);
          }},
         {"power",
          [](const RunRecord& r) { return format_power(r.result.power_w); }},
         {"energy/bit",
          [](const RunRecord& r) {
            return format_energy(r.result.energy_per_bit_j);
          }},
         {"mean latency", [](const RunRecord& r) {
            return format_fixed(r.result.mean_packet_latency_cycles, 1) +
                   " cyc";
          }}});
    std::cout << '\n';
  }

  std::cout << "hop accounting sanity (16 ports, 4x4 mesh): average "
               "uniform-traffic hop distance is\n~2.67; each hop costs one "
               "5-port router transit plus an 8-grid wire.\n";
  return 0;
}
