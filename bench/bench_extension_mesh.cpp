// Extension bench: the 2-D mesh NoC against the paper's four fabrics.
//
// The paper's bit-energy method applied to the topology its keywords
// anticipate. Meshes trade the crossbar's global wires for short hops plus
// per-hop router energy and queueing — the comparison shows where each
// wins as port count grows.
#include <iostream>

#include "fabric/mesh.hpp"
#include "sim/report.hpp"
#include "sim/simulation.hpp"

int main() {
  using namespace sfab;

  std::cout << "=== Extension: 2-D mesh NoC vs the paper's fabrics "
               "(uniform traffic) ===\n\n";

  for (const unsigned ports : {16u, 64u}) {
    std::cout << "--- " << ports << " ports ---\n";
    TextTable t;
    t.set_header({"architecture", "offered", "throughput", "power",
                  "energy/bit", "mean latency"});
    for (const Architecture arch : extended_architectures()) {
      // Banyan-class fabrics need power-of-two ports; mesh needs a square.
      // 16 and 64 satisfy both.
      for (const double load : {0.2, 0.4}) {
        SimConfig c;
        c.arch = arch;
        c.ports = ports;
        c.offered_load = load;
        c.warmup_cycles = 3'000;
        c.measure_cycles = 20'000;
        c.seed = 64;
        const SimResult r = run_simulation(c);
        t.add_row({std::string(to_string(arch)), format_percent(load),
                   format_percent(r.egress_throughput),
                   format_power(r.power_w),
                   format_energy(r.energy_per_bit_j),
                   format_fixed(r.mean_packet_latency_cycles, 1) + " cyc"});
      }
    }
    t.print(std::cout);
    std::cout << '\n';
  }

  std::cout << "hop accounting sanity (16 ports, 4x4 mesh): average "
               "uniform-traffic hop distance is\n~2.67; each hop costs one "
               "5-port router transit plus an 8-grid wire.\n";
  return 0;
}
