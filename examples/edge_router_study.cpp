// Scenario study: a 16-port edge router facing realistic traffic.
//
// The paper's intro motivates single-chip routers where the fabric is a
// big slice of the power budget. This example walks a concrete planning
// question: an edge aggregation router sees bursty, partially hot-spotted
// traffic — not the uniform Bernoulli ideal. How do the four fabrics hold
// up on power AND latency when the traffic gets ugly?
#include <iostream>

#include "sim/report.hpp"
#include "sim/simulation.hpp"

namespace {

sfab::SimConfig scenario(sfab::Architecture arch,
                         sfab::TrafficPatternKind pattern) {
  sfab::SimConfig c;
  c.arch = arch;
  c.ports = 16;
  c.offered_load = 0.35;       // provisioned at ~1/3 line rate
  c.packet_words = 16;         // 64-byte cells
  c.pattern = pattern;
  c.hotspot_fraction = 0.25;   // a popular uplink
  c.hotspot_port = 0;
  c.mean_burst_cycles = 400.0; // TCP-ish bursts
  c.measure_cycles = 25'000;
  c.warmup_cycles = 4'000;
  c.seed = 1717;
  return c;
}

}  // namespace

int main() {
  using namespace sfab;

  std::cout << "edge router study: 16x16 fabric, 35% provisioned load, "
               "64-byte cells\n";

  const struct {
    TrafficPatternKind pattern;
    const char* story;
  } cases[] = {
      {TrafficPatternKind::kUniform, "ideal uniform (the paper's workload)"},
      {TrafficPatternKind::kBursty, "bursty arrivals (TCP-like)"},
      {TrafficPatternKind::kHotspot, "hot uplink (25% of flows to port 0)"},
  };

  for (const auto& [pattern, story] : cases) {
    std::cout << "\n--- " << story << " ---\n";
    TextTable t;
    t.set_header({"architecture", "throughput", "power", "energy/bit",
                  "latency", "queue drops"});
    for (const Architecture arch : all_architectures()) {
      const SimResult r = run_simulation(scenario(arch, pattern));
      t.add_row({std::string(to_string(arch)),
                 format_percent(r.egress_throughput),
                 format_power(r.power_w), format_energy(r.energy_per_bit_j),
                 format_fixed(r.mean_packet_latency_cycles, 1) + " cyc",
                 std::to_string(r.input_queue_drops)});
    }
    t.print(std::cout);
  }

  std::cout
      << "\ntakeaways:\n"
         "  * bursty traffic inflates Banyan's buffer power well beyond "
         "its uniform-load figure;\n"
         "  * the hotspot throttles everyone's throughput equally (it is "
         "a destination-contention\n    effect, resolved before the "
         "fabric), but power follows delivered words;\n"
         "  * dedicated-path fabrics trade a flat energy/bit for "
         "insensitivity to contention.\n";
  return 0;
}
