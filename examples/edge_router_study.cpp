// Scenario study: a 16-port edge router facing realistic traffic.
//
// The paper's intro motivates single-chip routers where the fabric is a
// big slice of the power budget. This example walks a concrete planning
// question: an edge aggregation router sees bursty, partially hot-spotted
// traffic — not the uniform Bernoulli ideal. How do the four fabrics hold
// up on power AND latency when the traffic gets ugly? One pattern x
// architecture sweep through the experiment engine.
#include <iostream>

#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "sim/report.hpp"

int main() {
  using namespace sfab;

  std::cout << "edge router study: 16x16 fabric, 35% provisioned load, "
               "64-byte cells\n";

  SweepSpec spec;
  spec.base.ports = 16;
  spec.base.offered_load = 0.35;        // provisioned at ~1/3 line rate
  spec.base.packet_words = 16;          // 64-byte cells
  spec.base.hotspot_fraction = 0.25;    // a popular uplink
  spec.base.hotspot_port = 0;
  spec.base.mean_burst_cycles = 400.0;  // TCP-ish bursts
  spec.base.measure_cycles = 25'000;
  spec.base.warmup_cycles = 4'000;
  spec.base.seed = 1717;
  spec.over_architectures(all_architectures())
      .over_patterns({TrafficPatternKind::kUniform,
                      TrafficPatternKind::kBursty,
                      TrafficPatternKind::kHotspot});
  const ResultSet results = run_sweep(spec);

  const struct {
    TrafficPatternKind pattern;
    const char* story;
  } cases[] = {
      {TrafficPatternKind::kUniform, "ideal uniform (the paper's workload)"},
      {TrafficPatternKind::kBursty, "bursty arrivals (TCP-like)"},
      {TrafficPatternKind::kHotspot, "hot uplink (25% of flows to port 0)"},
  };

  for (const auto& [pattern, story] : cases) {
    std::cout << "\n--- " << story << " ---\n";
    print_records(
        std::cout,
        results.select([pattern = pattern](const RunRecord& r) {
          return r.config.pattern == pattern;
        }),
        {{"architecture",
          [](const RunRecord& r) {
            return std::string(to_string(r.config.arch));
          }},
         {"throughput",
          [](const RunRecord& r) {
            return format_percent(r.result.egress_throughput);
          }},
         {"power",
          [](const RunRecord& r) { return format_power(r.result.power_w); }},
         {"energy/bit",
          [](const RunRecord& r) {
            return format_energy(r.result.energy_per_bit_j);
          }},
         {"latency",
          [](const RunRecord& r) {
            return format_fixed(r.result.mean_packet_latency_cycles, 1) +
                   " cyc";
          }},
         {"queue drops", [](const RunRecord& r) {
            return std::to_string(r.result.input_queue_drops);
          }}});
  }

  std::cout
      << "\ntakeaways:\n"
         "  * bursty traffic inflates Banyan's buffer power well beyond "
         "its uniform-load figure;\n"
         "  * the hotspot throttles everyone's throughput equally (it is "
         "a destination-contention\n    effect, resolved before the "
         "fabric), but power follows delivered words;\n"
         "  * dedicated-path fabrics trade a flat energy/bit for "
         "insensitivity to contention.\n";
  return 0;
}
