// sfab_characterize — runs the gate-level characterization ladder and
// emits the versioned switch-energy LUT artifact (power/lut_artifact.hpp).
//
// The shipped artifact is regenerated with the defaults:
//
//   sfab_characterize --out power/luts/switch_luts.json
//
// CI's drift gate regenerates a reduced ladder (--reduced: MUX port counts
// stop at 64 instead of 1024; every other knob identical) and requires the
// rows it produces to match the committed artifact hexfloat for hexfloat —
// see scripts/check_lut_drift.py.
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "power/lut_artifact.hpp"
#include "power/technology.hpp"

namespace {

void usage(std::ostream& out) {
  out << "usage: sfab_characterize [options]\n"
         "  --out PATH      write the artifact here (default: stdout)\n"
         "  --cycles N      measured lane-cycles per mask (default 262144)\n"
         "  --warmup N      warm-up cycles per lane (default 128)\n"
         "  --seed N        Monte-Carlo base seed (default 0x5FAB1D)\n"
         "  --lanes N       lane population per mask, 1..512 (default 512)\n"
         "  --bits N        payload bits per port (default 32)\n"
         "  --threads N     characterize() workers (default 0 = all cores)\n"
         "  --max-mux N     top MUX port count, pow2 >= 4 (default 1024)\n"
         "  --presets A,B   technology presets (default: all)\n"
         "  --reduced       CI drift-gate ladder: --max-mux 64\n";
}

std::uint64_t parse_u64(const std::string& flag, const std::string& text) {
  std::size_t used = 0;
  const std::uint64_t value = std::stoull(text, &used, 0);
  if (used != text.size()) {
    throw std::invalid_argument(flag + ": bad number '" + text + "'");
  }
  return value;
}

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::size_t end = comma == std::string::npos ? text.size() : comma;
    if (end > start) out.push_back(text.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    sfab::LutBuildOptions options;
    std::string out_path;

    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto next = [&]() -> std::string {
        if (i + 1 >= argc) {
          throw std::invalid_argument(arg + ": missing value");
        }
        return argv[++i];
      };
      if (arg == "--out") {
        out_path = next();
      } else if (arg == "--cycles") {
        options.generator.cycles = parse_u64(arg, next());
      } else if (arg == "--warmup") {
        options.generator.warmup =
            static_cast<unsigned>(parse_u64(arg, next()));
      } else if (arg == "--seed") {
        options.generator.seed = parse_u64(arg, next());
      } else if (arg == "--lanes") {
        options.generator.lanes =
            static_cast<unsigned>(parse_u64(arg, next()));
      } else if (arg == "--bits") {
        options.generator.bits_per_port =
            static_cast<unsigned>(parse_u64(arg, next()));
      } else if (arg == "--threads") {
        options.threads = static_cast<unsigned>(parse_u64(arg, next()));
      } else if (arg == "--max-mux") {
        options.max_mux_inputs =
            static_cast<unsigned>(parse_u64(arg, next()));
      } else if (arg == "--presets") {
        options.presets = split_csv(next());
        for (const std::string& name : options.presets) {
          (void)sfab::TechnologyParams::preset(name);  // validate early
        }
      } else if (arg == "--reduced") {
        options.max_mux_inputs = 64;
      } else if (arg == "--help" || arg == "-h") {
        usage(std::cout);
        return 0;
      } else {
        throw std::invalid_argument("unknown option: " + arg);
      }
    }

    const sfab::LutArtifact artifact = sfab::build_lut_artifact(options);
    if (out_path.empty()) {
      sfab::write_lut_artifact(std::cout, artifact);
    } else {
      sfab::save_lut_artifact(out_path, artifact);
    }

    std::cerr << "sfab_characterize: " << artifact.presets.size()
              << " presets, mux ladder to "
              << artifact.presets.front().second.mux_inputs.back()
              << " inputs, cycles=" << artifact.generator.cycles
              << (out_path.empty() ? "" : ", wrote " + out_path) << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "sfab_characterize: " << e.what() << "\n";
    usage(std::cerr);
    return 1;
  }
}
