// Quickstart: estimate the power of one switch fabric in five steps.
//
//   1. pick a technology (defaults: 0.18 um / 3.3 V / 133 MHz, 32-bit bus)
//   2. describe the fabric (architecture + port count)
//   3. describe the traffic (pattern, load, packet length)
//   4. run the bit-accurate simulation
//   5. read power, energy/bit and the switch/buffer/wire split
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "sim/report.hpp"
#include "sim/simulation.hpp"

int main() {
  using namespace sfab;

  SimConfig config;
  config.arch = Architecture::kBanyan;  // try kCrossbar, kFullyConnected...
  config.ports = 16;
  config.offered_load = 0.35;  // fraction of line rate, per port
  config.packet_words = 16;    // 64-byte cells on a 32-bit bus
  config.measure_cycles = 20'000;
  config.seed = 1;

  std::cout << "simulating a " << config.ports << "x" << config.ports << " "
            << to_string(config.arch) << " fabric at "
            << format_percent(config.offered_load) << " offered load...\n\n";

  const SimResult r = run_simulation(config);

  TextTable t;
  t.set_header({"metric", "value"});
  t.add_row({"egress throughput", format_percent(r.egress_throughput)});
  t.add_row({"total fabric power", format_power(r.power_w)});
  t.add_row({"  node switches", format_power(r.switch_power_w)});
  t.add_row({"  internal buffers", format_power(r.buffer_power_w)});
  t.add_row({"  interconnect wires", format_power(r.wire_power_w)});
  t.add_row({"energy per bit", format_energy(r.energy_per_bit_j)});
  t.add_row({"mean packet latency",
             format_fixed(r.mean_packet_latency_cycles, 1) + " cycles"});
  t.add_row({"words buffered (contention)", std::to_string(r.words_buffered)});
  t.print(std::cout);

  std::cout << "\nnext steps: examples/architecture_explorer compares all "
               "four fabrics;\nexamples/sfab_cli sweeps whole parameter "
               "grids in parallel (exp/SweepRunner);\nbench/ regenerates "
               "every table and figure of the paper.\n";
  return 0;
}
