// Command-line front end: run any single simulation from the shell.
//
//   sfab_cli --arch banyan --ports 16 --load 0.35 --cycles 20000 \
//            --packet-words 16 --pattern uniform --seed 1
//
// Prints the full measurement block (throughput, power split, energy/bit,
// latency, contention counters). `--help` lists every knob. This is the
// scripting entry point: sweep it from a shell loop and plot the columns.
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>

#include "sim/report.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace sfab;

void print_usage() {
  std::cout <<
      "usage: sfab_cli [options]\n"
      "  --arch NAME        crossbar | fully-connected | banyan |\n"
      "                     batcher-banyan | mesh          [crossbar]\n"
      "  --ports N          port count (power of two; mesh: square) [16]\n"
      "  --load F           offered load, words/port/cycle in (0,1]  [0.4]\n"
      "  --cycles N         measured cycles                      [20000]\n"
      "  --warmup N         warm-up cycles                        [2000]\n"
      "  --packet-words N   packet length incl. header word         [16]\n"
      "  --pattern NAME     uniform | bit-reversal | hotspot | bursty\n"
      "                                                        [uniform]\n"
      "  --payload NAME     random | alternating | zero         [random]\n"
      "  --seed N           RNG seed                                 [1]\n"
      "  --tech NODE        0.25um | 0.18um | 0.13um            [0.18um]\n"
      "  --buffer-words N   node FIFO capacity in words            [128]\n"
      "  --skid N           skid bypass slots                        [1]\n"
      "  --dram             DRAM-backed node buffers (adds refresh)\n"
      "  --csv              one machine-readable CSV line instead of table\n"
      "  --help             this text\n";
}

Architecture parse_arch(const std::string& name) {
  static const std::map<std::string, Architecture> names{
      {"crossbar", Architecture::kCrossbar},
      {"fully-connected", Architecture::kFullyConnected},
      {"banyan", Architecture::kBanyan},
      {"batcher-banyan", Architecture::kBatcherBanyan},
      {"mesh", Architecture::kMesh}};
  const auto it = names.find(name);
  if (it == names.end()) throw std::invalid_argument("unknown --arch " + name);
  return it->second;
}

TrafficPatternKind parse_pattern(const std::string& name) {
  static const std::map<std::string, TrafficPatternKind> names{
      {"uniform", TrafficPatternKind::kUniform},
      {"bit-reversal", TrafficPatternKind::kBitReversal},
      {"hotspot", TrafficPatternKind::kHotspot},
      {"bursty", TrafficPatternKind::kBursty}};
  const auto it = names.find(name);
  if (it == names.end()) {
    throw std::invalid_argument("unknown --pattern " + name);
  }
  return it->second;
}

PayloadKind parse_payload(const std::string& name) {
  if (name == "random") return PayloadKind::kRandom;
  if (name == "alternating") return PayloadKind::kAlternating;
  if (name == "zero") return PayloadKind::kZero;
  throw std::invalid_argument("unknown --payload " + name);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sfab;

  SimConfig config;
  config.ports = 16;
  config.offered_load = 0.4;
  bool csv = false;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string flag = argv[i];
      const auto next = [&]() -> std::string {
        if (i + 1 >= argc) {
          throw std::invalid_argument(flag + " needs a value");
        }
        return argv[++i];
      };
      if (flag == "--help") {
        print_usage();
        return 0;
      } else if (flag == "--arch") {
        config.arch = parse_arch(next());
      } else if (flag == "--ports") {
        config.ports = static_cast<unsigned>(std::stoul(next()));
      } else if (flag == "--load") {
        config.offered_load = std::stod(next());
      } else if (flag == "--cycles") {
        config.measure_cycles = std::stoull(next());
      } else if (flag == "--warmup") {
        config.warmup_cycles = std::stoull(next());
      } else if (flag == "--packet-words") {
        config.packet_words = static_cast<unsigned>(std::stoul(next()));
      } else if (flag == "--pattern") {
        config.pattern = parse_pattern(next());
      } else if (flag == "--payload") {
        config.payload = parse_payload(next());
      } else if (flag == "--seed") {
        config.seed = std::stoull(next());
      } else if (flag == "--tech") {
        config.tech = TechnologyParams::preset(next());
        config.switches =
            SwitchEnergyTables::paper_defaults().scaled_to(config.tech);
      } else if (flag == "--buffer-words") {
        config.buffer_words_per_switch =
            static_cast<unsigned>(std::stoul(next()));
      } else if (flag == "--skid") {
        config.buffer_skid_words = static_cast<unsigned>(std::stoul(next()));
      } else if (flag == "--dram") {
        config.dram_buffers = true;
      } else if (flag == "--csv") {
        csv = true;
      } else {
        throw std::invalid_argument("unknown option " + flag);
      }
    }

    const SimResult r = run_simulation(config);

    if (csv) {
      std::cout << to_string(r.arch) << ',' << r.ports << ','
                << r.offered_load << ',' << r.egress_throughput << ','
                << r.power_w << ',' << r.switch_power_w << ','
                << r.buffer_power_w << ',' << r.wire_power_w << ','
                << r.energy_per_bit_j << ','
                << r.mean_packet_latency_cycles << ','
                << r.words_buffered << ',' << r.input_queue_drops << '\n';
      return 0;
    }

    std::cout << to_string(config.arch) << " " << config.ports << "x"
              << config.ports << ", " << to_string(config.pattern)
              << " traffic at " << format_percent(config.offered_load)
              << " offered load\n\n";
    TextTable t;
    t.set_header({"metric", "value"});
    t.add_row({"egress throughput", format_percent(r.egress_throughput)});
    t.add_row({"total power", format_power(r.power_w)});
    t.add_row({"  switches", format_power(r.switch_power_w)});
    t.add_row({"  buffers", format_power(r.buffer_power_w)});
    t.add_row({"  wires", format_power(r.wire_power_w)});
    t.add_row({"energy per bit", format_energy(r.energy_per_bit_j)});
    t.add_row({"mean packet latency",
               format_fixed(r.mean_packet_latency_cycles, 1) + " cycles"});
    t.add_row({"words buffered", std::to_string(r.words_buffered)});
    t.add_row({"  of which SRAM", std::to_string(r.sram_buffered_words)});
    t.add_row({"input-queue drops", std::to_string(r.input_queue_drops)});
    t.print(std::cout);
  } catch (const std::exception& error) {
    std::cerr << "sfab_cli: " << error.what() << "\n\n";
    print_usage();
    return 1;
  }
  return 0;
}
