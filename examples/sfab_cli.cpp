// Command-line front end: run a single simulation or a whole sweep from
// the shell, on every core.
//
//   sfab_cli --arch banyan --ports 16 --load 0.35 --cycles 20000
//   sfab_cli --arch crossbar,banyan --ports 8,16,32 --load 0.1,0.3,0.5
//            --replicates 3 --threads 8 --csv sweep.csv
//
// Every axis flag accepts a comma-separated list; the cross product runs
// through exp/SweepRunner with deterministic per-run seeds (bit-identical
// at any --threads value). A single run prints the full measurement block;
// a sweep prints a summary table. --csv <path> writes the stable
// machine-readable schema instead ("-" = stdout).
#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "sim/report.hpp"

namespace {

using namespace sfab;

void print_usage() {
  std::cout <<
      "usage: sfab_cli [options]   (list-valued flags take a,b,c)\n"
      "  --arch LIST        crossbar | fully-connected | banyan |\n"
      "                     batcher-banyan | mesh          [crossbar]\n"
      "  --ports LIST       port count (power of two; mesh: square) [16]\n"
      "  --load LIST        offered load, words/port/cycle in (0,1]  [0.4]\n"
      "  --pattern LIST     uniform | bit-reversal | hotspot | bursty\n"
      "                                                        [uniform]\n"
      "  --payload LIST     random | alternating | zero         [random]\n"
      "  --scheme LIST      fifo | voq                            [fifo]\n"
      "  --tech LIST        0.25um | 0.18um | 0.13um            [0.18um]\n"
      "  --buffer-words LIST node FIFO capacity in words          [128]\n"
      "  --packet-words LIST packet length incl. header word       [16]\n"
      "  --replicates N     seeds per grid point                     [1]\n"
      "  --threads N        worker threads (0 = all cores)           [0]\n"
      "  --cycles N         measured cycles                      [20000]\n"
      "  --warmup N         warm-up cycles                        [2000]\n"
      "  --seed N           base seed (per-run seeds are derived)    [1]\n"
      "  --skid N           skid bypass slots                        [1]\n"
      "  --dram             DRAM-backed node buffers (adds refresh)\n"
      "  --csv PATH         write the sweep as CSV to PATH (- = stdout)\n"
      "  --help             this text\n";
}

std::vector<std::string> split_list(const std::string& text) {
  std::vector<std::string> items;
  std::stringstream stream(text);
  std::string item;
  while (std::getline(stream, item, ',')) items.push_back(item);
  if (items.empty()) items.push_back(text);
  return items;
}

template <class T, class Parse>
std::vector<T> parse_list(const std::string& text, Parse parse) {
  std::vector<T> values;
  for (const std::string& item : split_list(text)) {
    values.push_back(parse(item));
  }
  return values;
}

void print_single_run(const RunRecord& rec) {
  const SimConfig& c = rec.config;
  const SimResult& r = rec.result;
  std::cout << to_string(c.arch) << " " << c.ports << "x" << c.ports << ", "
            << to_string(c.pattern) << " traffic at "
            << format_percent(c.offered_load) << " offered load\n\n";
  TextTable t;
  t.set_header({"metric", "value"});
  t.add_row({"egress throughput", format_percent(r.egress_throughput)});
  t.add_row({"total power", format_power(r.power_w)});
  t.add_row({"  switches", format_power(r.switch_power_w)});
  t.add_row({"  buffers", format_power(r.buffer_power_w)});
  t.add_row({"  wires", format_power(r.wire_power_w)});
  t.add_row({"energy per bit", format_energy(r.energy_per_bit_j)});
  t.add_row({"mean packet latency",
             format_fixed(r.mean_packet_latency_cycles, 1) + " cycles"});
  t.add_row({"words buffered", std::to_string(r.words_buffered)});
  t.add_row({"  of which SRAM", std::to_string(r.sram_buffered_words)});
  t.add_row({"input-queue drops", std::to_string(r.input_queue_drops)});
  t.print(std::cout);
}

void print_summary(const ResultSet& results) {
  print_records(
      std::cout, results,
      {{"arch",
        [](const RunRecord& r) {
          return std::string(to_string(r.config.arch));
        }},
       {"ports",
        [](const RunRecord& r) { return std::to_string(r.config.ports); }},
       {"load",
        [](const RunRecord& r) {
          return format_percent(r.config.offered_load);
        }},
       {"rep",
        [](const RunRecord& r) { return std::to_string(r.replicate); }},
       {"throughput",
        [](const RunRecord& r) {
          return format_percent(r.result.egress_throughput);
        }},
       {"power",
        [](const RunRecord& r) { return format_power(r.result.power_w); }},
       {"energy/bit",
        [](const RunRecord& r) {
          return format_energy(r.result.energy_per_bit_j);
        }},
       {"latency", [](const RunRecord& r) {
          return format_fixed(r.result.mean_packet_latency_cycles, 1) +
                 " cyc";
        }}});
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sfab;

  SweepSpec spec;
  spec.base.ports = 16;
  spec.base.offered_load = 0.4;
  unsigned threads = 0;
  std::string csv_path;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string flag = argv[i];
      const auto next = [&]() -> std::string {
        if (i + 1 >= argc) {
          throw std::invalid_argument(flag + " needs a value");
        }
        return argv[++i];
      };
      if (flag == "--help") {
        print_usage();
        return 0;
      } else if (flag == "--arch") {
        spec.architectures = parse_list<Architecture>(
            next(), [](const std::string& s) { return parse_architecture(s); });
      } else if (flag == "--ports") {
        spec.ports = parse_list<unsigned>(next(), [](const std::string& s) {
          return static_cast<unsigned>(std::stoul(s));
        });
      } else if (flag == "--load") {
        spec.loads = parse_list<double>(
            next(), [](const std::string& s) { return std::stod(s); });
      } else if (flag == "--pattern") {
        spec.patterns = parse_list<TrafficPatternKind>(
            next(),
            [](const std::string& s) { return parse_traffic_pattern(s); });
      } else if (flag == "--payload") {
        spec.payloads = parse_list<PayloadKind>(
            next(), [](const std::string& s) { return parse_payload_kind(s); });
      } else if (flag == "--scheme") {
        spec.schemes = parse_list<RouterScheme>(
            next(),
            [](const std::string& s) { return parse_router_scheme(s); });
      } else if (flag == "--tech") {
        spec.tech_nodes = split_list(next());
      } else if (flag == "--buffer-words") {
        spec.buffer_words =
            parse_list<unsigned>(next(), [](const std::string& s) {
              return static_cast<unsigned>(std::stoul(s));
            });
      } else if (flag == "--packet-words") {
        spec.packet_words =
            parse_list<unsigned>(next(), [](const std::string& s) {
              return static_cast<unsigned>(std::stoul(s));
            });
      } else if (flag == "--replicates") {
        spec.replicates = static_cast<unsigned>(std::stoul(next()));
      } else if (flag == "--threads") {
        threads = static_cast<unsigned>(std::stoul(next()));
      } else if (flag == "--cycles") {
        spec.base.measure_cycles = std::stoull(next());
      } else if (flag == "--warmup") {
        spec.base.warmup_cycles = std::stoull(next());
      } else if (flag == "--seed") {
        spec.base.seed = std::stoull(next());
      } else if (flag == "--skid") {
        spec.base.buffer_skid_words =
            static_cast<unsigned>(std::stoul(next()));
      } else if (flag == "--dram") {
        spec.base.dram_buffers = true;
      } else if (flag == "--csv") {
        csv_path = next();
      } else {
        throw std::invalid_argument("unknown option " + flag);
      }
    }

    const ResultSet results = run_sweep(spec, threads);

    if (!csv_path.empty()) {
      if (csv_path == "-") {
        write_csv(std::cout, results);
      } else {
        std::ofstream file(csv_path);
        if (!file) {
          throw std::runtime_error("cannot open " + csv_path +
                                   " for writing");
        }
        write_csv(file, results);
        std::cerr << "wrote " << results.size() << " runs to " << csv_path
                  << '\n';
      }
      return 0;
    }

    if (results.size() == 1) {
      print_single_run(results[0]);
    } else {
      // The pool never spawns more workers than there are runs.
      const std::size_t pool = std::min<std::size_t>(
          SweepRunner(threads).threads(), results.size());
      std::cout << results.size() << " runs (" << pool << " threads)\n\n";
      print_summary(results);
    }
  } catch (const std::exception& error) {
    std::cerr << "sfab_cli: " << error.what() << "\n\n";
    print_usage();
    return 1;
  }
  return 0;
}
