// Command-line front end: run a single simulation or a whole sweep from
// the shell, on every core.
//
//   sfab_cli --arch banyan --ports 16 --load 0.35 --cycles 20000
//   sfab_cli --arch crossbar,banyan --ports 8,16,32 --load 0.1,0.3,0.5
//            --replicates 3 --threads 8 --csv sweep.csv
//
// Every axis flag accepts a comma-separated list; the cross product runs
// through exp/SweepRunner with deterministic per-run seeds (bit-identical
// at any --threads value). A single run prints the full measurement block;
// a sweep prints a summary table. --csv <path> writes the stable
// machine-readable schema instead ("-" = stdout).
//
// The CLI is also the distributed-sweep front end (src/dist): --shards N
// makes it a coordinator that spawns N copies of itself as shard workers
// over a shared --shard-dir and merges their fragments; --shard-index I
// makes it worker I against that directory (run it by hand on several
// hosts sharing the directory for a multi-host sweep); --merge reassembles
// a completed directory without simulating. The merged CSV is
// byte-identical to the same sweep run in one process.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dist/coordinator.hpp"
#include "dist/merge.hpp"
#include "dist/shard_plan.hpp"
#include "dist/status.hpp"
#include "dist/worker.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "obs/log.hpp"
#include "obs/probe.hpp"
#include "obs/profiler.hpp"
#include "obs/registry.hpp"
#include "sim/report.hpp"

namespace {

using namespace sfab;

void print_usage() {
  std::cout <<
      "usage: sfab_cli [options]   (list-valued flags take a,b,c)\n"
      "  --arch LIST        crossbar | fully-connected | banyan |\n"
      "                     batcher-banyan | mesh          [crossbar]\n"
      "  --ports LIST       port count (power of two; mesh: square) [16]\n"
      "  --load LIST        offered load, words/port/cycle in (0,1]  [0.4]\n"
      "  --pattern LIST     uniform | bit-reversal | hotspot | bursty\n"
      "                                                        [uniform]\n"
      "  --payload LIST     random | alternating | zero         [random]\n"
      "  --scheme LIST      fifo | voq                            [fifo]\n"
      "  --tech LIST        0.25um | 0.18um | 0.13um            [0.18um]\n"
      "  --buffer-words LIST node FIFO capacity in words          [128]\n"
      "  --packet-words LIST packet length incl. header word       [16]\n"
      "  --replicates N     seeds per grid point                     [1]\n"
      "  --replicate-engine scalar | laned: how replicate batches run\n"
      "                     (bit-identical; laned packs the seeds of a\n"
      "                     grid point into bit-sliced lanes)     [laned]\n"
      "  --threads N        worker threads (0 = all cores)           [0]\n"
      "  --cycles N         measured cycles                      [20000]\n"
      "  --warmup N         warm-up cycles                        [2000]\n"
      "  --seed N           base seed (per-run seeds are derived)    [1]\n"
      "  --skid N           skid bypass slots                        [1]\n"
      "  --dram             DRAM-backed node buffers (adds refresh)\n"
      "  --csv PATH         write the sweep as CSV to PATH (- = stdout)\n"
      "distributed sweeps (see README \"Distributed sweeps\"):\n"
      "  --shards N         coordinator: spawn N local shard workers,\n"
      "                     then merge their fragments\n"
      "  --shard-index I    worker I: claim and run shards against\n"
      "                     --shard-dir until the sweep completes\n"
      "                     (requires --shards N = total worker count)\n"
      "  --shard-dir PATH   shared ledger directory (coordinator default:\n"
      "                     a temp dir, removed after the merge)\n"
      "  --merge            merge a completed --shard-dir, no simulation\n"
      "  --watch            follow --shard-dir live: per-shard progress\n"
      "                     bars until the sweep settles, then merge\n"
      "  --shard-count N    override the shard count (default: a few\n"
      "                     claimable shards per worker)\n"
      "  --max-reclaims N   retry strikes before a shard is quarantined\n"
      "                     as poisoned                              [3]\n"
      "  --allow-quarantined  merge past quarantined shards, reporting\n"
      "                     the precise missing run indices\n"
      "  --no-steal         worker: never split a straggler's shard\n"
      "  --stale-after S    seconds without a heartbeat before a claim\n"
      "                     counts as abandoned                     [30]\n"
      "observability (see README \"Observability\"):\n"
      "  --metrics-out PATH write the metrics-registry snapshot as JSON\n"
      "                     on exit (%p in PATH expands to the pid, so\n"
      "                     coordinator-spawned workers write distinct\n"
      "                     files)\n"
      "  --profile          time named sim/sweep/dist phases; per-phase\n"
      "                     totals land in the metrics JSON under\n"
      "                     \"phases\"\n"
      "  --trace-out PATH   write profiled phase spans as Chrome\n"
      "                     trace-event JSON on exit (%p = pid;\n"
      "                     implies --profile)\n"
      "  --probe-out PATH   single run only: sample per-cycle series\n"
      "                     (occupancy, delivered words, grants, stalls,\n"
      "                     energy split, per-port words) to a CSV;\n"
      "                     bit-identical to the unobserved run\n"
      "  --probe-stride N   sample every N cycles                   [64]\n"
      "  env: SFAB_LOG=error|warn|info|debug, SFAB_METRICS=0|1\n"
      "  --help             this text\n"
      "exit codes: 0 ok, 1 error, 2 sweep settled with quarantined\n"
      "shards (coordinator/watch), 3 worker finished but the sweep has\n"
      "quarantined shards\n";
}

std::vector<std::string> split_list(const std::string& text) {
  std::vector<std::string> items;
  std::stringstream stream(text);
  std::string item;
  while (std::getline(stream, item, ',')) items.push_back(item);
  if (items.empty()) items.push_back(text);
  return items;
}

template <class T, class Parse>
std::vector<T> parse_list(const std::string& text, Parse parse) {
  std::vector<T> values;
  for (const std::string& item : split_list(text)) {
    values.push_back(parse(item));
  }
  return values;
}

void print_single_run(const RunRecord& rec) {
  const SimConfig& c = rec.config;
  const SimResult& r = rec.result;
  std::cout << to_string(c.arch) << " " << c.ports << "x" << c.ports << ", "
            << to_string(c.pattern) << " traffic at "
            << format_percent(c.offered_load) << " offered load\n\n";
  TextTable t;
  t.set_header({"metric", "value"});
  t.add_row({"egress throughput", format_percent(r.egress_throughput)});
  t.add_row({"total power", format_power(r.power_w)});
  t.add_row({"  switches", format_power(r.switch_power_w)});
  t.add_row({"  buffers", format_power(r.buffer_power_w)});
  t.add_row({"  wires", format_power(r.wire_power_w)});
  t.add_row({"energy per bit", format_energy(r.energy_per_bit_j)});
  t.add_row({"mean packet latency",
             format_fixed(r.mean_packet_latency_cycles, 1) + " cycles"});
  t.add_row({"words buffered", std::to_string(r.words_buffered)});
  t.add_row({"  of which SRAM", std::to_string(r.sram_buffered_words)});
  t.add_row({"input-queue drops", std::to_string(r.input_queue_drops)});
  t.print(std::cout);
}

void print_summary(const ResultSet& results) {
  print_records(
      std::cout, results,
      {{"arch",
        [](const RunRecord& r) {
          return std::string(to_string(r.config.arch));
        }},
       {"ports",
        [](const RunRecord& r) { return std::to_string(r.config.ports); }},
       {"load",
        [](const RunRecord& r) {
          return format_percent(r.config.offered_load);
        }},
       {"rep",
        [](const RunRecord& r) { return std::to_string(r.replicate); }},
       {"throughput",
        [](const RunRecord& r) {
          return format_percent(r.result.egress_throughput);
        }},
       {"power",
        [](const RunRecord& r) { return format_power(r.result.power_w); }},
       {"energy/bit",
        [](const RunRecord& r) {
          return format_energy(r.result.energy_per_bit_j);
        }},
       {"latency", [](const RunRecord& r) {
          return format_fixed(r.result.mean_packet_latency_cycles, 1) +
                 " cyc";
        }}});
}

/// CSV file / stdout / table output, identical for local, sharded, and
/// merged sweeps. `csv_text` (when non-null) is written verbatim in place
/// of re-serializing `results` — merged fragments stay byte-identical to a
/// single-process write_csv.
void emit_results(const ResultSet& results, const std::string& csv_path,
                  const std::string* csv_text, const std::string& note) {
  if (!csv_path.empty()) {
    std::ostringstream fallback;
    if (csv_text == nullptr) write_csv(fallback, results);
    const std::string& text = csv_text ? *csv_text : fallback.str();
    if (csv_path == "-") {
      std::cout << text;
    } else {
      std::ofstream file(csv_path, std::ios::binary);
      if (!file) {
        throw std::runtime_error("cannot open " + csv_path + " for writing");
      }
      file << text;
      std::cerr << "wrote " << results.size() << " runs to " << csv_path
                << '\n';
    }
    return;
  }
  if (results.size() == 1) {
    print_single_run(results[0]);
  } else {
    std::cout << results.size() << " runs (" << note << ")\n\n";
    print_summary(results);
  }
}

/// One line per hole in a gap-tolerant merge: the exact missing indices.
void print_gap_report(const dist::MergeOutput& merged) {
  for (const dist::ShardGap& gap : merged.gaps) {
    if (gap.missing_begin >= gap.missing_end) continue;
    std::cerr << "sfab_cli: shard " << gap.key << " missing runs "
              << gap.missing_begin << ".." << gap.missing_end << " ("
              << gap.committed << " of " << gap.end - gap.begin
              << " recovered from its stream";
    if (gap.poison) {
      std::cerr << "; quarantined after " << gap.poison->reclaims
                << " retries";
      if (!gap.poison->reason.empty()) {
        std::cerr << ": " << gap.poison->reason;
      }
    }
    std::cerr << ")\n";
  }
}

/// Names the config a quarantined shard's suspect run would have
/// executed — the thing the operator must fix or exclude.
void print_poisoned_configs(const SweepSpec& spec,
                            const std::vector<dist::PoisonRecord>& poisoned) {
  const std::vector<RunPlan> plans = spec.expand();
  for (const dist::PoisonRecord& poison : poisoned) {
    std::cerr << "sfab_cli: shard " << poison.key
              << " quarantined at run " << poison.suspect;
    if (poison.suspect < plans.size()) {
      const SimConfig& c = plans[poison.suspect].config;
      std::cerr << " (" << to_string(c.arch) << " " << c.ports << "x"
                << c.ports << ", load " << c.offered_load << ", seed "
                << c.seed << ")";
    }
    if (!poison.reason.empty()) std::cerr << ": " << poison.reason;
    std::cerr << '\n';
  }
}

/// Expands every "%p" in an output path to this process's pid, so
/// coordinator-spawned workers given the same flag write distinct files.
std::string expand_pid(std::string path) {
  const std::string pid = std::to_string(::getpid());
  for (std::size_t at = path.find("%p"); at != std::string::npos;
       at = path.find("%p", at + pid.size())) {
    path.replace(at, 2, pid);
  }
  return path;
}

/// Writes the observability outputs on every exit path (including error
/// returns): the registry snapshot plus per-phase totals to --metrics-out
/// and the profiled spans to --trace-out. Failures warn, never throw.
struct ObsOutputs {
  std::string metrics_path;
  std::string trace_path;

  ~ObsOutputs() {
    if (!metrics_path.empty()) {
      std::ofstream file(expand_pid(metrics_path), std::ios::binary);
      if (!file) {
        obs::log_warn("cli", "cannot open ", metrics_path,
                      " for the metrics snapshot");
      } else {
        file << "{\n  \"metrics\": ";
        obs::Registry::global().write_json(file, 2);
        file << ",\n  \"phases\": ";
        obs::Profiler::global().write_stats_json(file, 2);
        file << "\n}\n";
      }
    }
    if (!trace_path.empty()) {
      std::ofstream file(expand_pid(trace_path), std::ios::binary);
      if (!file) {
        obs::log_warn("cli", "cannot open ", trace_path,
                      " for the trace export");
      } else {
        obs::Profiler::global().write_trace_json(file);
      }
    }
  }
};

/// One line on stderr when a result cache was in play this sweep.
void print_cache_summary() {
  const auto& registry = obs::Registry::global();
  const std::uint64_t hits = registry.counter_value("exp.cache.hits");
  const std::uint64_t misses = registry.counter_value("exp.cache.misses");
  if (hits + misses == 0) return;  // no cache attached (or metrics off)
  obs::log_info("cli", "cache: ", hits, " hits, ", misses, " misses, ",
                registry.counter_value("exp.cache.inserts"), " inserts");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sfab;

  // The CLI is interactive: default the log level to info so worker and
  // coordinator progress is visible. SFAB_LOG still wins when set.
  if (std::getenv("SFAB_LOG") == nullptr) {
    obs::set_log_level(obs::LogLevel::kInfo);
  }

  SweepSpec spec;
  spec.base.ports = 16;
  spec.base.offered_load = 0.4;
  unsigned threads = 0;
  ReplicateEngine engine = ReplicateEngine::kLaned;
  std::string csv_path;
  ObsOutputs obs_outputs;
  std::string probe_path;
  std::uint64_t probe_stride = 64;
  unsigned shards = 0;
  int shard_index = -1;
  std::string shard_dir;
  bool merge_mode = false;
  bool watch_mode = false;
  bool allow_quarantined = false;
  bool steal = true;
  unsigned max_reclaims = 3;
  std::size_t shard_count_override = 0;
  double stale_after_s = 30.0;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string flag = argv[i];
      const auto next = [&]() -> std::string {
        if (i + 1 >= argc) {
          throw std::invalid_argument(flag + " needs a value");
        }
        return argv[++i];
      };
      if (flag == "--help") {
        print_usage();
        return 0;
      } else if (flag == "--arch") {
        spec.architectures = parse_list<Architecture>(
            next(), [](const std::string& s) { return parse_architecture(s); });
      } else if (flag == "--ports") {
        spec.ports = parse_list<unsigned>(next(), [](const std::string& s) {
          return static_cast<unsigned>(std::stoul(s));
        });
      } else if (flag == "--load") {
        spec.loads = parse_list<double>(
            next(), [](const std::string& s) { return std::stod(s); });
      } else if (flag == "--pattern") {
        spec.patterns = parse_list<TrafficPatternKind>(
            next(),
            [](const std::string& s) { return parse_traffic_pattern(s); });
      } else if (flag == "--payload") {
        spec.payloads = parse_list<PayloadKind>(
            next(), [](const std::string& s) { return parse_payload_kind(s); });
      } else if (flag == "--scheme") {
        spec.schemes = parse_list<RouterScheme>(
            next(),
            [](const std::string& s) { return parse_router_scheme(s); });
      } else if (flag == "--tech") {
        spec.tech_nodes = split_list(next());
        // Validate at parse time: an unknown node would otherwise surface
        // as a generic exception + full usage dump when the sweep expands.
        for (const std::string& node : spec.tech_nodes) {
          try {
            (void)TechnologyParams::preset(node);
          } catch (const std::invalid_argument&) {
            std::cerr << "sfab_cli: unknown --tech preset '" << node
                      << "'. Valid presets:";
            for (const std::string& known :
                 TechnologyParams::preset_names()) {
              std::cerr << ' ' << known;
            }
            std::cerr << '\n';
            return 1;
          }
        }
      } else if (flag == "--buffer-words") {
        spec.buffer_words =
            parse_list<unsigned>(next(), [](const std::string& s) {
              return static_cast<unsigned>(std::stoul(s));
            });
      } else if (flag == "--packet-words") {
        spec.packet_words =
            parse_list<unsigned>(next(), [](const std::string& s) {
              return static_cast<unsigned>(std::stoul(s));
            });
      } else if (flag == "--replicates") {
        spec.replicates = static_cast<unsigned>(std::stoul(next()));
      } else if (flag == "--replicate-engine") {
        engine = parse_replicate_engine(next());
      } else if (flag == "--threads") {
        threads = static_cast<unsigned>(std::stoul(next()));
      } else if (flag == "--cycles") {
        spec.base.measure_cycles = std::stoull(next());
      } else if (flag == "--warmup") {
        spec.base.warmup_cycles = std::stoull(next());
      } else if (flag == "--seed") {
        spec.base.seed = std::stoull(next());
      } else if (flag == "--skid") {
        spec.base.buffer_skid_words =
            static_cast<unsigned>(std::stoul(next()));
      } else if (flag == "--dram") {
        spec.base.dram_buffers = true;
      } else if (flag == "--csv") {
        csv_path = next();
      } else if (flag == "--shards") {
        shards = static_cast<unsigned>(std::stoul(next()));
        if (shards == 0) {
          throw std::invalid_argument("--shards must be >= 1");
        }
      } else if (flag == "--shard-index") {
        shard_index = std::stoi(next());
        if (shard_index < 0) {
          throw std::invalid_argument("--shard-index must be >= 0");
        }
      } else if (flag == "--shard-dir") {
        shard_dir = next();
      } else if (flag == "--merge") {
        merge_mode = true;
      } else if (flag == "--watch") {
        watch_mode = true;
      } else if (flag == "--allow-quarantined") {
        allow_quarantined = true;
      } else if (flag == "--no-steal") {
        steal = false;
      } else if (flag == "--max-reclaims") {
        max_reclaims = static_cast<unsigned>(std::stoul(next()));
        if (max_reclaims == 0) {
          throw std::invalid_argument("--max-reclaims must be >= 1");
        }
      } else if (flag == "--shard-count") {
        shard_count_override = std::stoull(next());
        if (shard_count_override == 0) {
          throw std::invalid_argument("--shard-count must be >= 1");
        }
      } else if (flag == "--stale-after") {
        stale_after_s = std::stod(next());
      } else if (flag == "--metrics-out") {
        obs_outputs.metrics_path = next();
      } else if (flag == "--profile") {
        obs::Profiler::global().set_enabled(true);
      } else if (flag == "--trace-out") {
        obs_outputs.trace_path = next();
        obs::Profiler::global().set_spans_enabled(true);
      } else if (flag == "--probe-out") {
        probe_path = next();
      } else if (flag == "--probe-stride") {
        probe_stride = std::stoull(next());
        if (probe_stride == 0) {
          throw std::invalid_argument("--probe-stride must be >= 1");
        }
      } else {
        throw std::invalid_argument("unknown option " + flag);
      }
    }

    // --- merge-only: reassemble a completed shard directory ---------------
    if (merge_mode) {
      if (shard_dir.empty()) {
        throw std::invalid_argument("--merge needs --shard-dir");
      }
      dist::MergeOptions merge_options;
      merge_options.allow_quarantined = allow_quarantined;
      const dist::MergeOutput merged =
          dist::merge_shards(shard_dir, merge_options);
      emit_results(merged.results, csv_path, &merged.csv_text, "merged");
      print_gap_report(merged);
      return merged.gaps.empty() ? 0 : 2;
    }

    // --- watch: follow a shard directory live, merge when it settles ------
    if (watch_mode) {
      if (shard_dir.empty()) {
        throw std::invalid_argument("--watch needs --shard-dir");
      }
      const dist::ShardLedger ledger(shard_dir, stale_after_s);
      for (;;) {
        dist::SweepStatus status;
        try {
          status = dist::sweep_status(ledger);
        } catch (const std::exception&) {
          std::cerr << "[watch] waiting for a published plan in "
                    << shard_dir << "\n";
          std::this_thread::sleep_for(std::chrono::milliseconds(500));
          continue;
        }
        std::cerr << "[watch]\n";
        dist::render_status(std::cerr, status);
        if (status.settled) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(500));
      }
      dist::MergeOptions merge_options;
      merge_options.allow_quarantined = allow_quarantined;
      const dist::MergeOutput merged =
          dist::merge_shards(shard_dir, merge_options);
      emit_results(merged.results, csv_path, &merged.csv_text, "watched");
      print_gap_report(merged);
      return merged.gaps.empty() ? 0 : 2;
    }

    // --- worker: claim and run shards until the sweep settles -------------
    if (shard_index >= 0) {
      if (shards == 0 || shard_dir.empty()) {
        throw std::invalid_argument(
            "--shard-index needs --shards (worker count) and --shard-dir");
      }
      dist::WorkerOptions options;
      options.threads = threads;
      options.engine = engine;
      options.stale_after_s = stale_after_s;
      options.worker_index = static_cast<unsigned>(shard_index);
      options.max_reclaims = max_reclaims;
      options.steal = steal;
      const std::size_t shard_count =
          shard_count_override != 0
              ? shard_count_override
              : dist::default_shard_count(spec.run_count(), shards);
      const dist::WorkerReport report =
          dist::run_worker(spec, shard_count, shard_dir, options);
      return report.sweep_quarantined ? 3 : 0;
    }

    // --- coordinator: spawn local workers, then merge ---------------------
    if (shards > 0) {
      const bool user_dir = !shard_dir.empty();
      if (!user_dir) {
        shard_dir = (std::filesystem::temp_directory_path() /
                     ("sfab-shards-" + std::to_string(::getpid())))
                        .string();
      }
      // Split the cores across workers unless the user pinned --threads.
      unsigned worker_threads = threads;
      if (worker_threads == 0) {
        const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
        worker_threads = std::max(1u, hw / shards);
      }
      const std::vector<std::string> base_argv(argv, argv + argc);
      const auto worker_argv = [&](unsigned worker) {
        std::vector<std::string> child = base_argv;
        child.insert(child.end(),
                     {"--shard-index", std::to_string(worker)});
        if (!user_dir) {
          child.insert(child.end(), {"--shard-dir", shard_dir});
        }
        if (threads == 0) {
          child.insert(child.end(),
                       {"--threads", std::to_string(worker_threads)});
        }
        return child;
      };

      const std::size_t shard_count =
          shard_count_override != 0
              ? shard_count_override
              : dist::default_shard_count(spec.run_count(), shards);
      dist::CoordinatorOptions options;
      options.workers = shards;
      const dist::CoordinatorReport report =
          dist::ShardCoordinator(shard_dir, worker_argv)
              .run(shard_count, options);

      if (!report.poisoned.empty()) {
        // Settled, but some shards are quarantined: name the crashing
        // configs and exit 2. With --allow-quarantined, also emit what
        // survived plus the precise gap report.
        print_poisoned_configs(spec, report.poisoned);
        if (allow_quarantined) {
          dist::MergeOptions merge_options;
          merge_options.expected_fingerprint = dist::fingerprint_of(spec);
          merge_options.allow_quarantined = true;
          const dist::MergeOutput merged =
              dist::merge_shards(shard_dir, merge_options);
          emit_results(merged.results, csv_path, &merged.csv_text,
                       std::to_string(report.spawned) + " workers, " +
                           std::to_string(merged.gaps.size()) +
                           " quarantined shard(s)");
          print_gap_report(merged);
        }
        if (!user_dir) std::filesystem::remove_all(shard_dir);
        return 2;
      }

      const dist::MergeOutput merged =
          dist::merge_shards(shard_dir, dist::fingerprint_of(spec));
      emit_results(merged.results, csv_path, &merged.csv_text,
                   std::to_string(report.spawned) + " workers, " +
                       std::to_string(shard_count) + " shards");
      if (!user_dir) std::filesystem::remove_all(shard_dir);
      return 0;
    }

    // --- probed single run: per-cycle series sampled to a CSV -------------
    if (!probe_path.empty()) {
      if (spec.run_count() != 1) {
        throw std::invalid_argument(
            "--probe-out needs a single run (one value per axis, "
            "--replicates 1), got " + std::to_string(spec.run_count()));
      }
      std::vector<RunPlan> plans = spec.expand();
      obs::ProbeRecorder recorder(probe_stride);
      std::vector<RunRecord> records(1);
      records[0].index = plans[0].index;
      records[0].replicate = plans[0].replicate;
      records[0].config = std::move(plans[0].config);
      records[0].result = run_simulation(records[0].config, &recorder);
      {
        const std::string path = expand_pid(probe_path);
        std::ofstream file(path, std::ios::binary);
        if (!file) {
          throw std::runtime_error("cannot open " + path + " for writing");
        }
        recorder.write_csv(file);
        obs::log_info("cli", "wrote ", recorder.samples(),
                      " probe samples (stride ", probe_stride, ") to ",
                      path);
      }
      emit_results(ResultSet(std::move(records)), csv_path, nullptr,
                   "probed");
      return 0;
    }

    // --- plain single-process sweep ---------------------------------------
    const ResultSet results = run_sweep(spec, threads, engine);
    // The pool never spawns more workers than there are runs.
    const std::size_t pool = std::min<std::size_t>(
        SweepRunner(threads).threads(), results.size());
    emit_results(results, csv_path, nullptr,
                 std::to_string(pool) + " threads");
    print_cache_summary();
  } catch (const std::exception& error) {
    std::cerr << "sfab_cli: " << error.what() << "\n\n";
    print_usage();
    return 1;
  }
  return 0;
}
