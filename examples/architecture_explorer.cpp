// Architecture exploration: which switch fabric should a router use?
//
// Sweeps all four architectures over a load range for a given port count
// (one engine sweep, parallel across cores) and prints the winner per
// operating point — the paper's design-space question ("this framework can
// be applied to the architectural exploration for low power high
// performance network router designs").
//
// Usage: architecture_explorer [ports] [packet_words]
//        defaults: 16 ports, 16-word packets.
#include <cstdlib>
#include <iostream>
#include <vector>

#include "exp/runner.hpp"
#include "sim/report.hpp"

int main(int argc, char** argv) {
  using namespace sfab;

  const unsigned ports = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 16;
  const unsigned packet_words =
      argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 16;
  if (ports < 4 || (ports & (ports - 1)) != 0) {
    std::cerr << "ports must be a power of two >= 4\n";
    return 1;
  }

  std::cout << "architecture exploration: " << ports << "x" << ports
            << " fabric, " << packet_words << "-word packets, uniform "
            << "traffic\n\n";

  SweepSpec spec;
  spec.base.ports = ports;
  spec.base.packet_words = packet_words;
  spec.base.measure_cycles = 15'000;
  spec.base.seed = 4;
  spec.over_architectures(all_architectures())
      .over_loads({0.1, 0.2, 0.3, 0.4, 0.5});
  const ResultSet results = run_sweep(spec);

  TextTable t;
  t.set_header({"load", "crossbar", "fully-conn", "banyan", "batcher-banyan",
                "lowest power"});
  for (const double load : spec.loads) {
    std::vector<std::string> row{format_percent(load)};
    double best = 1e30;
    Architecture winner = Architecture::kCrossbar;
    for (const Architecture arch : spec.architectures) {
      const RunRecord& rec = results.at([load, arch](const RunRecord& r) {
        return r.config.offered_load == load && r.config.arch == arch;
      });
      row.push_back(format_power(rec.result.power_w));
      if (rec.result.power_w < best) {
        best = rec.result.power_w;
        winner = arch;
      }
    }
    row.emplace_back(to_string(winner));
    t.add_row(std::move(row));
  }
  t.print(std::cout);

  std::cout << "\nreading the table: Banyan wins while its buffers stay "
               "cold; once contention sets in,\nthe dedicated-path fabrics "
               "take over (crossbar at small N, fully-connected vs\n"
               "batcher-banyan depending on wire vs switch balance).\n";
  return 0;
}
