// What-if planning with the analytical model: no simulation, closed forms
// only — the quick first pass of an architecture exploration.
//
// For each technology node and port count this prints the worst-case
// energy per bit (Eqs. 3-6) and the load at which the Banyan's expected
// buffer penalty overtakes the cheapest dedicated-path fabric.
#include <iostream>

#include "common/bitops.hpp"
#include "common/units.hpp"
#include "power/analytical.hpp"
#include "sim/report.hpp"

int main() {
  using namespace sfab;

  std::cout << "technology planner: worst-case bit energy (Eqs. 3-6) and "
               "Banyan break-even load\n";

  for (const std::string node : {"0.25um", "0.18um", "0.13um"}) {
    const TechnologyParams tech = TechnologyParams::preset(node);
    const AnalyticalModel model{
        tech, SwitchEnergyTables::paper_defaults().scaled_to(tech)};

    std::cout << "\n--- " << node << " (E_T "
              << format_energy(tech.grid_wire_bit_energy_j())
              << " per grid) ---\n";
    TextTable t;
    t.set_header({"ports", "crossbar", "fully-conn", "banyan q=0",
                  "batcher-banyan", "banyan break-even"});
    for (const unsigned ports : {4u, 8u, 16u, 32u, 64u}) {
      // Break-even: expected buffer penalty equals the margin to the
      // cheapest rival (average-case, toggle activity 0.5, write+read).
      AnalyticalModel::AverageParams avg{0.5, 0.0, true};
      const double banyan_base = model.banyan_avg_bit_energy(ports, avg);
      const double rival =
          std::min(model.crossbar_avg_bit_energy(ports, avg),
                   std::min(model.fully_connected_avg_bit_energy(ports, avg),
                            model.batcher_banyan_avg_bit_energy(ports, avg)));
      std::string break_even = "never (base above rival)";
      if (banyan_base < rival) {
        const double e_b = model.banyan_buffer(ports).bit_energy_j();
        const unsigned stages = log2_exact(ports);
        // stages * (load/4) * 2 * E_B = rival - base  =>  solve for load.
        const double load =
            (rival - banyan_base) / (stages * 0.25 * 2.0 * e_b);
        break_even = load >= 1.0 ? "above 100%" : format_percent(load);
      }
      t.add_row({std::to_string(ports),
                 format_energy(model.crossbar_bit_energy(ports)),
                 format_energy(model.fully_connected_bit_energy(ports)),
                 format_energy(model.banyan_bit_energy_no_contention(ports)),
                 format_energy(model.batcher_banyan_bit_energy(ports)),
                 break_even});
    }
    t.print(std::cout);
  }

  std::cout << "\nreading: newer nodes shrink everything by C*V^2 but keep "
               "the ordering; the Banyan\nbreak-even load falls with port "
               "count because the buffer penalty scales with the\nshared "
               "SRAM size while the rival fabrics' margins grow only "
               "linearly in wire length.\n";
  return 0;
}
